// xmk0 — General Matrix Multiplication: D = alpha*(A x B) + beta*C with
// A = ms1 (MxK), B = ms2 (KxN), C = ms3 (MxN), D = md (MxN).
//
// The inner product runs as rank-1 updates with vmacc.es: each A element
// multiplies a whole B-row chunk into the accumulator row, so the vector
// length is the N-chunk size and the element scalar is pulled from the
// A-row register without any eCPU round trip. All three dimensions tile:
// M over accumulator rows, K over B-row blocks, and N over vector-register
// columns (chunks of VLEN elements), supporting arbitrary shapes.
#include <algorithm>

#include "kernels/planner_util.hpp"
#include "kernels/planners.hpp"

namespace arcane::kernels {
namespace {

using crt::KernelOp;
using crt::Plan;
using crt::Tile;
using vpu::VOpc;

struct GemmParams {
  Addr a_addr, b_addr, c_addr, d_addr;
  std::uint32_t a_stride_b, b_stride_b, c_stride_b, d_stride_b;
  std::uint32_t M, K, N;
  std::int32_t alpha, beta;
  unsigned es;
  ElemType et;
  // layout / tiling
  std::uint32_t kb, mt, nc, kt, tiles_per_m, tiles_per_n;
  std::uint8_t b_base, a_base, acc_base;
};

Tile gemm_tile(const GemmParams& p, unsigned idx) {
  Tile t;
  const unsigned ni = idx / p.tiles_per_n;
  const unsigned rem = idx % p.tiles_per_n;
  const unsigned mi = rem / p.tiles_per_m;
  const unsigned step = rem % p.tiles_per_m;
  const std::uint32_t n0 = ni * p.nc;
  const std::uint32_t ncur = std::min(p.nc, p.N - n0);
  const std::uint32_t m0 = mi * p.mt;
  const std::uint32_t mc = std::min(p.mt, p.M - m0);
  const bool has_beta_tile = p.beta != 0;
  const bool is_beta_tile = has_beta_tile && step == p.kt;
  const bool is_last_k = step + 1 == p.kt;

  if (!is_beta_tile) {
    const std::uint32_t k0 = step * p.kb;
    const std::uint32_t kc = std::min(p.kb, p.K - k0);
    // B rows [k0, k0+kc), column chunk [n0, n0+ncur).
    crt::DmaXfer b;
    b.mem_addr = p.b_addr + k0 * p.b_stride_b + n0 * p.es;
    b.rows = kc;
    b.row_bytes = ncur * p.es;
    b.mem_stride = p.b_stride_b;
    b.first_vreg = p.b_base;
    t.loads.push_back(b);
    // A rows [m0, m0+mc), column chunk [k0, k0+kc).
    crt::DmaXfer a;
    a.mem_addr = p.a_addr + m0 * p.a_stride_b + k0 * p.es;
    a.rows = mc;
    a.row_bytes = kc * p.es;
    a.mem_stride = p.a_stride_b;
    a.first_vreg = p.a_base;
    t.loads.push_back(a);

    for (std::uint32_t m = 0; m < mc; ++m) {
      const unsigned acc = p.acc_base + m;
      if (step == 0) emit_zero(t.prog, acc, p.et, ncur);
      for (std::uint32_t k = 0; k < kc; ++k) {
        t.prog.push_back(vop(VOpc::kMaccEs, acc, p.a_base + m, p.b_base + k,
                             p.et, ncur, k));
      }
      if (is_last_k && p.alpha != 1) {
        t.prog.push_back(vop(VOpc::kMulVX, acc, acc, 0, p.et, ncur,
                             static_cast<std::uint32_t>(p.alpha)));
      }
    }
    if (is_last_k && !has_beta_tile) {
      crt::DmaXfer s;
      s.mem_addr = p.d_addr + m0 * p.d_stride_b + n0 * p.es;
      s.rows = mc;
      s.row_bytes = ncur * p.es;
      s.mem_stride = p.d_stride_b;
      s.first_vreg = p.acc_base;
      t.stores.push_back(s);
    }
  } else {
    // beta tile: D_row += beta * C_row (column chunk), then write back.
    crt::DmaXfer c;
    c.mem_addr = p.c_addr + m0 * p.c_stride_b + n0 * p.es;
    c.rows = mc;
    c.row_bytes = ncur * p.es;
    c.mem_stride = p.c_stride_b;
    c.first_vreg = p.b_base;
    t.loads.push_back(c);
    for (std::uint32_t m = 0; m < mc; ++m) {
      t.prog.push_back(vop(VOpc::kMaccVX, p.acc_base + m, 0, p.b_base + m,
                           p.et, ncur, static_cast<std::uint32_t>(p.beta)));
    }
    crt::DmaXfer s;
    s.mem_addr = p.d_addr + m0 * p.d_stride_b + n0 * p.es;
    s.rows = mc;
    s.row_bytes = ncur * p.es;
    s.mem_stride = p.d_stride_b;
    s.first_vreg = p.acc_base;
    t.stores.push_back(s);
  }
  return t;
}

Plan plan_gemm(const KernelOp& op, const SystemConfig& cfg) {
  Geometry g(op.et, cfg);
  const auto& a = op.ms1.shape;
  const auto& b = op.ms2.shape;
  const auto& c = op.ms3.shape;
  const auto& d = op.md.shape;

  if (a.cols != b.rows) return Plan::fail("gemm: inner dimensions differ");
  if (d.rows != a.rows || d.cols != b.cols)
    return Plan::fail("gemm: destination shape mismatch");
  const std::int32_t beta = sx16(op.f.beta);
  if (beta != 0 && (c.rows != d.rows || c.cols != d.cols))
    return Plan::fail("gemm: accumulator (ms3) shape mismatch");

  GemmParams p;
  p.a_addr = op.ms1.addr;
  p.b_addr = op.ms2.addr;
  p.c_addr = op.ms3.addr;
  p.d_addr = op.md.addr;
  p.a_stride_b = a.stride * g.es;
  p.b_stride_b = b.stride * g.es;
  p.c_stride_b = c.stride * g.es;
  p.d_stride_b = d.stride * g.es;
  p.M = a.rows;
  p.K = a.cols;
  p.N = b.cols;
  p.alpha = sx16(op.f.alpha);
  p.beta = beta;
  p.es = g.es;
  p.et = op.et;

  // Layout: kb B-rows + mt A-rows + mt accumulators + one spare; N tiles
  // over whole-register column chunks.
  p.kb = std::min<std::uint32_t>(10, p.K);
  p.mt = std::min<std::uint32_t>((g.nv - p.kb - 1) / 2, p.M);
  p.nc = std::min<std::uint32_t>(g.cap, p.N);
  p.kt = ceil_div(p.K, p.kb);
  p.tiles_per_m = p.kt + (p.beta != 0 ? 1u : 0u);
  p.tiles_per_n = ceil_div(p.M, p.mt) * p.tiles_per_m;
  p.b_base = 0;
  p.a_base = static_cast<std::uint8_t>(p.kb);
  p.acc_base = static_cast<std::uint8_t>(p.kb + p.mt);

  crt::Chain chain;
  chain.tile_count = ceil_div(p.N, p.nc) * p.tiles_per_n;
  chain.make_tile = [p](unsigned i) { return gemm_tile(p, i); };
  chain.vregs_used = vreg_range(0, p.kb + 2 * p.mt);

  Plan plan;
  plan.chains.push_back(std::move(chain));
  plan.dest_lo = op.md.addr;
  plan.dest_hi = op.md.addr + mat_footprint_bytes(d, op.et);
  return plan;
}

}  // namespace

crt::PlannerFn gemm_planner() {
  return [](const KernelOp& op, const SystemConfig& cfg) {
    return plan_gemm(op, cfg);
  };
}

}  // namespace arcane::kernels
