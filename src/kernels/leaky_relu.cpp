// xmk1 — LeakyReLU: D[i] = x >= 0 ? x : x >> alpha (negative slope 2^-alpha;
// alpha == 0 degenerates to plain ReLU and uses a single vmax per row).
#include <algorithm>

#include "kernels/planner_util.hpp"
#include "kernels/planners.hpp"

namespace arcane::kernels {
namespace {

using crt::KernelOp;
using crt::Plan;
using crt::Tile;
using vpu::VOpc;

struct LreluParams {
  Addr in_addr, out_addr;
  std::uint32_t in_stride_b, out_stride_b;
  std::uint32_t rows, cols;
  std::uint32_t alpha;
  unsigned es;
  ElemType et;
  std::uint32_t rt;  // rows per tile
  std::uint8_t in_base, out_base, tmp_v;
};

Tile lrelu_tile(const LreluParams& p, unsigned i) {
  Tile t;
  const std::uint32_t r0 = i * p.rt;
  const std::uint32_t rc = std::min(p.rt, p.rows - r0);
  load_rows(t, p.in_addr, p.in_stride_b, p.cols * p.es, r0, rc, p.in_base);
  for (std::uint32_t r = 0; r < rc; ++r) {
    const unsigned in_v = p.in_base + r;
    const unsigned out_v = p.out_base + r;
    t.prog.push_back(vop(VOpc::kMaxVX, out_v, in_v, 0, p.et, p.cols, 0));
    if (p.alpha != 0) {
      t.prog.push_back(vop(VOpc::kMinVX, p.tmp_v, in_v, 0, p.et, p.cols, 0));
      t.prog.push_back(
          vop(VOpc::kSraVX, p.tmp_v, p.tmp_v, 0, p.et, p.cols, p.alpha));
      t.prog.push_back(
          vop(VOpc::kAddVV, out_v, out_v, p.tmp_v, p.et, p.cols));
    }
  }
  store_rows(t, p.out_addr, p.out_stride_b, p.cols * p.es, r0, rc, p.out_base);
  return t;
}

Plan plan_leaky_relu(const KernelOp& op, const SystemConfig& cfg) {
  Geometry g(op.et, cfg);
  const auto& in = op.ms1.shape;
  const auto& out = op.md.shape;
  if (in.rows != out.rows || in.cols != out.cols)
    return Plan::fail("leaky_relu: shape mismatch");
  if (in.cols > g.cap) return Plan::fail("leaky_relu: row exceeds VLEN");
  const std::uint32_t alpha = op.f.alpha;
  if (alpha >= 8u * g.es)
    return Plan::fail("leaky_relu: shift exceeds element width");

  LreluParams p;
  p.in_addr = op.ms1.addr;
  p.out_addr = op.md.addr;
  p.in_stride_b = in.stride * g.es;
  p.out_stride_b = out.stride * g.es;
  p.rows = in.rows;
  p.cols = in.cols;
  p.alpha = alpha;
  p.es = g.es;
  p.et = op.et;
  p.rt = std::min<std::uint32_t>((g.nv - 1) / 2, p.rows);
  p.in_base = 0;
  p.out_base = static_cast<std::uint8_t>(p.rt);
  p.tmp_v = static_cast<std::uint8_t>(2 * p.rt);

  crt::Chain chain;
  chain.tile_count = ceil_div(p.rows, p.rt);
  chain.make_tile = [p](unsigned i) { return lrelu_tile(p, i); };
  chain.vregs_used = vreg_range(0, 2 * p.rt + 1);

  Plan plan;
  plan.chains.push_back(std::move(chain));
  plan.dest_lo = op.md.addr;
  plan.dest_hi = op.md.addr + mat_footprint_bytes(out, op.et);
  return plan;
}

}  // namespace

crt::PlannerFn leaky_relu_planner() {
  return [](const KernelOp& op, const SystemConfig& cfg) {
    return plan_leaky_relu(op, cfg);
  };
}

}  // namespace arcane::kernels
