#include "llc/llc.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace arcane::llc {

Llc::Llc(const SystemConfig& cfg, sim::EventQueue& events,
         mem::MainMemory& ext, dma::DmaEngine& dma,
         vpu::LineStorage& storage)
    : cfg_(cfg),
      events_(&events),
      ext_(&ext),
      dma_(&dma),
      storage_(&storage),
      line_bytes_(cfg.llc.line_bytes()),
      lines_(cfg.llc.num_lines()),
      policy_(make_replacement_strategy(cfg.llc, lines_)) {
  tag_to_line_.reserve(lines_.size() * 2);
}

void Llc::register_metrics(telemetry::Registry& reg) {
  auto bind = [&](const char* name, const std::uint64_t& field) {
    reg.bind(name, [&field] { return field; });
  };
  bind("llc.reads", stats_.reads);
  bind("llc.writes", stats_.writes);
  bind("llc.hits", stats_.hits);
  bind("llc.misses", stats_.misses);
  bind("llc.evictions", stats_.evictions);
  bind("llc.writebacks", stats_.writebacks);
  bind("llc.refills", stats_.refills);
  bind("llc.kernel_line_claims", stats_.kernel_line_claims);
  reg.bind("llc.stall.lock", [this] { return stats_.stalls.lock; });
  reg.bind("llc.stall.at_source", [this] { return stats_.stalls.at_source; });
  reg.bind("llc.stall.at_dest", [this] { return stats_.stalls.at_dest; });
  reg.bind("llc.stall.busy_lines",
           [this] { return stats_.stalls.busy_lines; });
  reg.bind("llc.stall.miss", [this] { return stats_.stalls.miss; });
  reg.bind("llc.stall.dma_contention",
           [this] { return stats_.stalls.dma_contention; });
}

int Llc::lookup(Addr base) const {
  const Line& m = lines_[mru_idx_];
  if (m.tag == base &&
      (m.state == LineState::kClean || m.state == LineState::kDirty)) {
    return static_cast<int>(mru_idx_);
  }
  const auto it = tag_to_line_.find(base);
  if (it == tag_to_line_.end()) return -1;
  mru_idx_ = it->second;
  return static_cast<int>(it->second);
}

int Llc::find_victim(Addr incoming) {
  // Pass 1: any invalid line — free capacity beats any policy decision.
  for (unsigned i = 0; i < lines_.size(); ++i) {
    if (lines_[i].state == LineState::kInvalid) return static_cast<int>(i);
  }
  return policy_->find_victim(incoming);
}

std::uint32_t Llc::evict(unsigned idx) {
  Line& l = lines_[idx];
  std::uint32_t ext_bytes = 0;
  if (l.state == LineState::kClean || l.state == LineState::kDirty) {
    policy_->evict(idx, l.tag);
    if (l.state == LineState::kDirty) {
      auto data = storage_->line(idx);
      ext_->write(l.tag, data.data(), line_bytes_);
      ext_bytes = line_bytes_;
      ++stats_.writebacks;
    }
    tag_to_line_.erase(l.tag);
    ++stats_.evictions;
  }
  l.state = LineState::kInvalid;
  l.age = 0;
  return ext_bytes;
}

Cycle Llc::refill(Addr base, Cycle t, Cycle& dma_wait) {
  int victim = find_victim(base);
  while (victim < 0) {
    // Every line is busy computing: forward progress requires a kernel
    // event (write-back/release) to run.
    ARCANE_CHECK(!events_->empty(),
                 "host starved: all cache lines busy computing and no "
                 "pending kernel events (deadlock)");
    const Cycle ev_t = events_->run_one();
    t = std::max(t, ev_t);
    victim = find_victim(base);
  }
  Cycle duration = 0;
  if (lines_[victim].state == LineState::kDirty) {
    // write-back burst
    duration += ext_->burst_cycles(lines_[victim].tag, line_bytes_);
  }
  evict(static_cast<unsigned>(victim));
  duration += ext_->burst_cycles(base, line_bytes_);  // refill burst

  const Cycle start = dma_->reserve(t, duration);
  dma_wait = start - t;

  Line& l = lines_[victim];
  l.state = LineState::kClean;
  l.tag = base;
  l.owner_uid = 0;
  tag_to_line_[base] = static_cast<unsigned>(victim);
  policy_->fill(static_cast<unsigned>(victim), base);
  ext_->read(base, storage_->line(static_cast<unsigned>(victim)).data(),
             line_bytes_);
  ++stats_.refills;
  ++stats_.misses;
  if (spans_ != nullptr) {
    spans_->span(telemetry::kTrackLlc, "llc.refill", t, start + duration,
                 /*tenant=*/-1, /*job=*/-1, /*arg=*/base);
  }
  return start + duration;
}

Cycle Llc::resolve_stalls(Addr addr, unsigned bytes, bool is_write, Cycle t) {
  for (;;) {
    events_->run_until(t);
    if (locked_until_ > t) {
      stats_.stalls.lock += locked_until_ - t;
      t = locked_until_;
      continue;
    }
    const AtEntry* block = at_.blocking(addr, bytes, is_write);
    if (block == nullptr) return t;
    if (block->free_at != kUnknownTime && block->free_at > t) {
      (block->is_dest ? stats_.stalls.at_dest : stats_.stalls.at_source) +=
          block->free_at - t;
      t = block->free_at;
      continue;
    }
    // Release instant not yet computed: execute the next kernel event.
    ARCANE_CHECK(!events_->empty(),
                 "host blocked on AT range [0x"
                     << std::hex << block->lo << ", 0x" << block->hi
                     << ") with no pending kernel events (deadlock)");
    const Cycle before = t;
    t = std::max(t, events_->run_one());
    (block->is_dest ? stats_.stalls.at_dest : stats_.stalls.at_source) +=
        t - before;
  }
}

Llc::HostResult Llc::host_access(Addr addr, unsigned bytes, bool is_write,
                                 void* data, Cycle now) {
  ARCANE_ASSERT(bytes >= 1 && bytes <= 4, "host access size " << bytes);
  ARCANE_ASSERT((addr & (line_bytes_ - 1)) + bytes <= line_bytes_,
                "host access crosses a cache line");

  policy_->host_tick();
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  // Pre-resolution hook: lets the C-RT materialize deferred (elided)
  // write-backs whose AT entries would otherwise block this access forever.
  if (on_host_access) on_host_access(addr, bytes, is_write);

  Cycle t = now;
  if (locked_until_ > t || at_.any_active() || !events_->empty()) {
    t = resolve_stalls(addr, bytes, is_write, t);
  }
  // Post-resolution hook: kernels that completed *during* the stall drain
  // may have left forwarding residents; a write must invalidate them before
  // the data lands.
  if (on_host_access) on_host_access(addr, bytes, is_write);

  const Addr base = line_base(addr);
  int idx = lookup(base);
  HostResult res;
  if (idx >= 0) {
    ++stats_.hits;
    res.hit = true;
    res.complete_at = t + cfg_.llc.hit_latency;
    policy_->touch(static_cast<unsigned>(idx), base);
  } else {
    // The refill already reported the install via ReplacementStrategy::fill;
    // a second touch here would double-count the reference (it would, e.g.,
    // promote an ARC line from T1 straight into T2 on first use).
    Cycle dma_wait = 0;
    const Cycle done = refill(base, t, dma_wait);
    stats_.stalls.dma_contention += dma_wait;
    stats_.stalls.miss += done - t - dma_wait;
    idx = lookup(base);
    ARCANE_ASSERT(idx >= 0, "refill failed to install line");
    res.hit = false;
    res.complete_at = done + cfg_.llc.hit_latency;
  }

  auto line_data = storage_->line(static_cast<unsigned>(idx));
  const std::uint32_t off = addr - base;
  if (is_write) {
    std::memcpy(line_data.data() + off, data, bytes);
    lines_[idx].state = LineState::kDirty;
  } else {
    std::memcpy(data, line_data.data() + off, bytes);
  }
  return res;
}

void Llc::lock_until(Cycle t) { locked_until_ = std::max(locked_until_, t); }

dma::TransferCost Llc::claim_line(unsigned vpu, unsigned vreg,
                                  std::uint64_t uid) {
  const unsigned idx = storage_->line_of(vpu, vreg);
  Line& l = lines_[idx];
  dma::TransferCost cost;
  if (l.state == LineState::kBusy) {
    ARCANE_ASSERT(l.owner_uid == uid, "line " << idx
                                              << " busy with another kernel");
    return cost;  // already ours
  }
  if (l.state == LineState::kDirty) {
    cost.ext_bytes = line_bytes_;
    cost.ext_bursts = 1;
  }
  evict(idx);
  l.state = LineState::kBusy;
  l.owner_uid = uid;
  ++stats_.kernel_line_claims;
  return cost;
}

void Llc::release_kernel_lines(std::uint64_t uid) {
  for (Line& l : lines_) {
    if (l.state == LineState::kBusy && l.owner_uid == uid) {
      l.state = LineState::kInvalid;
      l.owner_uid = 0;
      l.age = 0;
    }
  }
}

bool Llc::line_is_busy(unsigned vpu, unsigned vreg) const {
  return lines_[storage_->line_of(vpu, vreg)].state == LineState::kBusy;
}

unsigned Llc::dirty_lines_in_vpu(unsigned vpu) const {
  const unsigned per = cfg_.llc.vpu.num_vregs;
  unsigned count = 0;
  for (unsigned v = 0; v < per; ++v) {
    if (lines_[vpu * per + v].state == LineState::kDirty) ++count;
  }
  return count;
}

unsigned Llc::busy_lines_in_vpu(unsigned vpu) const {
  const unsigned per = cfg_.llc.vpu.num_vregs;
  unsigned count = 0;
  for (unsigned v = 0; v < per; ++v) {
    if (lines_[vpu * per + v].state == LineState::kBusy) ++count;
  }
  return count;
}

dma::TransferCost Llc::read_range(Addr addr, std::span<std::uint8_t> out) {
  dma::TransferCost cost;
  std::uint32_t done = 0;
  const auto len = static_cast<std::uint32_t>(out.size());
  bool any_ext = false, any_cache = false;
  while (done < len) {
    const Addr a = addr + done;
    const Addr base = line_base(a);
    const std::uint32_t off = a - base;
    const std::uint32_t chunk = std::min(len - done, line_bytes_ - off);
    const int idx = lookup(base);
    if (idx >= 0) {
      std::memcpy(out.data() + done, storage_->line(idx).data() + off, chunk);
      cost.cache_bytes += chunk;
      any_cache = true;
    } else {
      ext_->read(a, out.data() + done, chunk);
      cost.ext_bytes += chunk;
      any_ext = true;
    }
    done += chunk;
  }
  if (any_ext) cost.ext_bursts = 1;      // one 2D-DMA row burst
  if (any_cache) cost.int_segments = 1;  // one on-chip row segment
  return cost;
}

dma::TransferCost Llc::write_range(Addr addr,
                                   std::span<const std::uint8_t> in) {
  dma::TransferCost cost;
  std::uint32_t done = 0;
  const auto len = static_cast<std::uint32_t>(in.size());
  bool any_ext = false, any_cache = false;
  while (done < len) {
    const Addr a = addr + done;
    const Addr base = line_base(a);
    const std::uint32_t off = a - base;
    const std::uint32_t chunk = std::min(len - done, line_bytes_ - off);
    int idx = lookup(base);
    if (idx < 0) {
      // Fetch-on-write: allocate and (for partial coverage) fetch the line.
      const int victim = find_victim(base);
      if (victim < 0) {
        // Every line is busy computing — degrade to an external write.
        ext_->write(a, in.data() + done, chunk);
        cost.ext_bytes += chunk;
        any_ext = true;
        done += chunk;
        continue;
      }
      cost.ext_bytes += evict(static_cast<unsigned>(victim));
      Line& l = lines_[victim];
      l.state = LineState::kClean;
      l.tag = base;
      tag_to_line_[base] = static_cast<unsigned>(victim);
      policy_->fill(static_cast<unsigned>(victim), base);
      if (chunk != line_bytes_) {
        ext_->read(base, storage_->line(victim).data(), line_bytes_);
        cost.ext_bytes += line_bytes_;
        any_ext = true;
      }
      ++stats_.refills;
      idx = victim;
    }
    std::memcpy(storage_->line(idx).data() + off, in.data() + done, chunk);
    lines_[idx].state = LineState::kDirty;
    cost.cache_bytes += chunk;
    any_cache = true;
    done += chunk;
  }
  if (any_ext) cost.ext_bursts = 1;
  if (any_cache) cost.int_segments = 1;
  return cost;
}

void Llc::backdoor_read(Addr addr, void* out, std::uint32_t len) {
  auto* p = static_cast<std::uint8_t*>(out);
  std::uint32_t done = 0;
  while (done < len) {
    const Addr a = addr + done;
    const Addr base = line_base(a);
    const std::uint32_t off = a - base;
    const std::uint32_t chunk = std::min(len - done, line_bytes_ - off);
    const int idx = lookup(base);
    if (idx >= 0) {
      std::memcpy(p + done, storage_->line(idx).data() + off, chunk);
    } else {
      ext_->read(a, p + done, chunk);
    }
    done += chunk;
  }
}

void Llc::backdoor_write(Addr addr, const void* in, std::uint32_t len) {
  const auto* p = static_cast<const std::uint8_t*>(in);
  std::uint32_t done = 0;
  while (done < len) {
    const Addr a = addr + done;
    const Addr base = line_base(a);
    const std::uint32_t off = a - base;
    const std::uint32_t chunk = std::min(len - done, line_bytes_ - off);
    const int idx = lookup(base);
    if (idx >= 0) {
      std::memcpy(storage_->line(idx).data() + off, p + done, chunk);
      lines_[idx].state = LineState::kDirty;
    } else {
      ext_->write(a, p + done, chunk);
    }
    done += chunk;
  }
}

void Llc::flush_all() {
  for (unsigned i = 0; i < lines_.size(); ++i) {
    Line& l = lines_[i];
    if (l.state == LineState::kDirty) {
      ext_->write(l.tag, storage_->line(i).data(), line_bytes_);
      l.state = LineState::kClean;
      ++stats_.writebacks;
    }
  }
}

void Llc::invalidate_all() {
  flush_all();
  for (Line& l : lines_) {
    if (l.state == LineState::kClean) l = Line{};
  }
  tag_to_line_.clear();
  // Adaptive strategies drop their resident/ghost directories; the legacy
  // strategies keep their counters, matching the pre-strategy controller.
  policy_->reset();
}

}  // namespace arcane::llc
