// The ARCANE smart last-level cache controller (paper §III-A).
//
// Normal mode: fully associative, write-back + write-allocate cache with
// single-cycle hits, DMA-serviced misses and a pluggable replacement
// strategy (replacement.hpp: the paper's counter-based approximate LRU,
// true LRU, random, and the adaptive CLOCK/LRU-K/ARC/CAR family).
// Compute mode: cache lines double as VPU vector registers; lines claimed
// for an in-flight kernel are "busy computing" and are excluded from
// replacement. The controller arbitrates between the host port and the
// Matrix Allocator through a lock register and the Address Table.
//
// Timing protocol: `host_access` is called with the host's local time; it
// first drains simulator events up to that time, then resolves stalls
// (lock, AT hazards, busy lines, refills) by advancing time — executing
// pending events one by one where forward progress depends on them — and
// returns the completion time. Kernel-side mutations (claim/read/write
// range) happen atomically inside allocator/writeback events; this is
// equivalent to the hardware because the allocator holds the controller
// lock for the duration of those windows (see DESIGN.md §5).
#ifndef ARCANE_LLC_LLC_HPP_
#define ARCANE_LLC_LLC_HPP_

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "dma/dma.hpp"
#include "llc/address_table.hpp"
#include "llc/line.hpp"
#include "llc/replacement.hpp"
#include "mem/main_memory.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "vpu/line_storage.hpp"

namespace arcane::llc {

class Llc {
 public:
  Llc(const SystemConfig& cfg, sim::EventQueue& events, mem::MainMemory& ext,
      dma::DmaEngine& dma, vpu::LineStorage& storage);

  // ------------------------- host slave port -------------------------
  struct HostResult {
    Cycle complete_at = 0;
    bool hit = false;
  };
  /// Aligned access of 1/2/4 bytes. Reads fill `data`, writes consume it.
  HostResult host_access(Addr addr, unsigned bytes, bool is_write,
                         void* data, Cycle now);

  // --------------------- controller lock (allocator) -----------------
  void lock_until(Cycle t);
  Cycle locked_until() const { return locked_until_; }

  // ------------------------- compute mode ----------------------------
  /// Claim the line backing (vpu, vreg) for kernel `uid`: evicts cached
  /// content (writing back dirty data functionally) and marks it busy.
  /// Returns the eviction transfer cost for the caller's timing.
  dma::TransferCost claim_line(unsigned vpu, unsigned vreg, std::uint64_t uid);
  /// Free every line owned by kernel `uid` (post write-back).
  void release_kernel_lines(std::uint64_t uid);
  bool line_is_busy(unsigned vpu, unsigned vreg) const;
  unsigned dirty_lines_in_vpu(unsigned vpu) const;
  unsigned busy_lines_in_vpu(unsigned vpu) const;

  // ------------------ allocator 2D-DMA data path ---------------------
  /// Read [addr, addr+out.size()) through the cache: hits are forwarded
  /// from lines, misses stream from external memory (no allocation).
  dma::TransferCost read_range(Addr addr, std::span<std::uint8_t> out);
  /// Write a kernel result range into the cache with fetch-on-write
  /// semantics (paper §III-A4); falls back to an external write when no
  /// victim line is available.
  dma::TransferCost write_range(Addr addr, std::span<const std::uint8_t> in);

  AddressTable& at() { return at_; }
  const AddressTable& at() const { return at_; }

  // --------------------------- maintenance ---------------------------
  /// Coherent (cache-merged) access for tests, loaders and goldens.
  void backdoor_read(Addr addr, void* out, std::uint32_t len);
  void backdoor_write(Addr addr, const void* in, std::uint32_t len);
  /// Write back all dirty lines (functional; used by tests).
  void flush_all();
  /// Drop every line (after flush) — returns the cache to reset state.
  void invalidate_all();

  const sim::CacheStats& stats() const { return stats_; }
  sim::CacheStats& stats() { return stats_; }
  unsigned num_lines() const { return static_cast<unsigned>(lines_.size()); }
  const Line& line(unsigned idx) const { return lines_[idx]; }

  void set_spans(telemetry::SpanTracer* spans) { spans_ = spans; }
  /// Bind this controller's CacheStats fields as `llc.*` registry views.
  void register_metrics(telemetry::Registry& reg);

  /// Invoked on every host access *before* hazard resolution (used by the
  /// C-RT to invalidate or lazily materialize forwarded/resident kernel
  /// results kept in VPU registers).
  std::function<void(Addr, unsigned, bool is_write)> on_host_access;

 private:
  Addr line_base(Addr addr) const { return addr & ~(line_bytes_ - 1); }
  int lookup(Addr base) const;
  /// Pick a victim for the incoming line base among non-busy lines:
  /// recycles any Invalid line first, then delegates the replacement
  /// decision to the configured strategy; -1 when every line is busy.
  int find_victim(Addr incoming);
  /// Evict line idx (functional write-back when dirty); returns ext bytes.
  std::uint32_t evict(unsigned idx);
  /// Handle a miss at `base` at time `t`: returns refill completion time.
  Cycle refill(Addr base, Cycle t, Cycle& dma_wait);
  /// Advance `t` past the lock window / AT hazards / busy-line starvation,
  /// draining events as needed.
  Cycle resolve_stalls(Addr addr, unsigned bytes, bool is_write, Cycle t);

  SystemConfig cfg_;
  sim::EventQueue* events_;
  mem::MainMemory* ext_;
  dma::DmaEngine* dma_;
  vpu::LineStorage* storage_;

  std::uint32_t line_bytes_;
  std::vector<Line> lines_;
  std::unordered_map<Addr, unsigned> tag_to_line_;
  /// 1-entry MRU lookup cache. Self-validating: the hit predicate (tag
  /// matches AND the line is Clean/Dirty) is exactly the invariant under
  /// which tag_to_line_ holds the entry, so eviction/claiming needs no
  /// explicit invalidation here. Streaming kernels hit it on nearly every
  /// sequential host access, skipping the hash probe.
  mutable unsigned mru_idx_ = 0;
  /// Replacement bookkeeping (victim ranking, recency/ghost state) lives in
  /// the strategy; the controller only reports touch/fill/evict events.
  std::unique_ptr<ReplacementStrategy> policy_;
  AddressTable at_;
  Cycle locked_until_ = 0;
  telemetry::SpanTracer* spans_ = nullptr;
  sim::CacheStats stats_;
};

}  // namespace arcane::llc

#endif  // ARCANE_LLC_LLC_HPP_
