// Cache-line bookkeeping shared by the LLC controller (llc.hpp) and the
// pluggable replacement strategies (replacement.hpp).
#ifndef ARCANE_LLC_LINE_HPP_
#define ARCANE_LLC_LINE_HPP_

#include <cstdint>

#include "common/types.hpp"

namespace arcane::llc {

enum class LineState : std::uint8_t {
  kInvalid = 0,
  kClean,
  kDirty,
  kBusy,  // claimed as a kernel operand vector register
};

struct Line {
  LineState state = LineState::kInvalid;
  Addr tag = 0;               // line base address (valid for Clean/Dirty)
  std::uint8_t age = 0;       // approximate-LRU counter
  std::uint64_t lru_seq = 0;  // exact-LRU timestamp (ablation policy)
  std::uint64_t owner_uid = 0;  // kernel owning a Busy line
};

}  // namespace arcane::llc

#endif  // ARCANE_LLC_LINE_HPP_
