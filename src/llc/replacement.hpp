// Pluggable LLC replacement strategies (victim selection + recency
// bookkeeping), extracted from the controller so the adaptive family
// (ARC / CAR / CLOCK / LRU-K) plugs in next to the paper's approximate
// LRU without touching the hit/miss datapath.
//
// Contract between Llc and a strategy:
//  * host_tick()     — once per host-port access, before lookup (drives the
//                      approximate-LRU decay clock; others ignore it).
//  * touch(idx, a)   — resident line `idx` holding tag `a` was hit by the
//                      host port. Never called for Busy or Invalid lines.
//  * fill(idx, a)    — line `idx` was just installed with tag `a` (miss
//                      refill or fetch-on-write allocation). Exactly once
//                      per install; no separate touch follows.
//  * evict(idx, a)   — a resident (Clean/Dirty) line leaves the cache for a
//                      reason the strategy did NOT choose (kernel claim).
//                      Victims returned by find_victim are already
//                      accounted for internally and must be ignored here.
//  * find_victim(a)  — choose a non-Busy resident line to make room for the
//                      incoming tag `a`. The controller has already
//                      recycled any Invalid line (pass-1), so every
//                      Clean/Dirty line is a candidate. Returns -1 only
//                      when nothing is evictable (all lines busy
//                      computing); the controller then drains kernel
//                      events and retries.
//  * reset()         — invalidate_all. Legacy strategies keep their
//                      counters (bit-compatible with the pre-strategy
//                      controller); adaptive strategies drop all state.
//
// Determinism rules: strategies may consult only their own state and the
// shared line array — no wall clock, no address-dependent hashing with
// unspecified iteration order. The adaptive strategies are allocation-free
// in steady state (fixed node pools sized at construction); legacy kRandom
// keeps its historical per-miss candidate vector so its victim stream stays
// bit-identical to the pre-strategy controller.
//
// Allocator DMA paths keep their historical behaviour for every policy:
// read_range never updates recency and write_range updates it only when it
// installs a line — hits through those ports are invisible to the strategy.
#ifndef ARCANE_LLC_REPLACEMENT_HPP_
#define ARCANE_LLC_REPLACEMENT_HPP_

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "llc/line.hpp"

namespace arcane::llc {

class ReplacementStrategy {
 public:
  virtual ~ReplacementStrategy() = default;
  virtual void host_tick() {}
  virtual void touch(unsigned idx, Addr base) = 0;
  virtual void fill(unsigned idx, Addr base) = 0;
  virtual void evict(unsigned /*idx*/, Addr /*base*/) {}
  virtual int find_victim(Addr incoming) = 0;
  virtual void reset() {}
};

/// Builds the strategy selected by `cfg.replacement`. `lines` is the
/// controller's line array; the strategy holds the reference for its whole
/// lifetime (it reads states and writes the legacy age / lru_seq fields).
std::unique_ptr<ReplacementStrategy> make_replacement_strategy(
    const LlcConfig& cfg, std::vector<Line>& lines);

}  // namespace arcane::llc

#endif  // ARCANE_LLC_REPLACEMENT_HPP_
