// The seven LLC replacement strategies behind the ReplacementStrategy
// interface (see replacement.hpp for the controller contract).
//
// Legacy family — bit-identical to the pre-strategy controller, including
// the shared age/lru_seq bookkeeping written into the Line array:
//   * approx-lru  per-line 8-bit ages, periodic decay (the paper's policy)
//   * true-lru    exact LRU stack ordering via a 64-bit sequence counter
//   * random      deterministic xorshift32 over the evictable candidates
//
// Adaptive family — deterministic and allocation-free in steady state
// (fixed node pools sized at construction, intrusive lists, linear ghost
// probes bounded by 2c entries):
//   * clock       one reference bit per line + a clock hand (second chance)
//   * lru-k       K=2 backward distance with retained history for evicted
//                 tags (O'Neil et al.); scan-resistant
//   * arc         Megiddo & Modha's Adaptive Replacement Cache: T1/T2
//                 resident lists, B1/B2 ghost lists, self-tuning target p
//   * car         Bansal & Modha's Clock with Adaptive Replacement: the
//                 ARC ghost/target machinery over two clocks, so hits only
//                 set a reference bit
//
// Busy-line pinning: claimed lines are evicted by the controller before
// they turn Busy, so the adaptive strategies' resident lists only ever
// contain evictable (Clean/Dirty) lines; the legacy and clock scans skip
// Busy states explicitly.
#include "llc/replacement.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace arcane::llc {

namespace {

bool resident(const Line& l) {
  return l.state == LineState::kClean || l.state == LineState::kDirty;
}

// ------------------------------------------------------------------
// Legacy family
// ------------------------------------------------------------------

/// Shared recency bookkeeping of the pre-strategy controller: every touch
/// stamps both the approximate age and the exact LRU sequence, whichever
/// policy is active, so introspection (Llc::line) stays unchanged.
class LegacyStrategy : public ReplacementStrategy {
 public:
  explicit LegacyStrategy(std::vector<Line>& lines) : lines_(lines) {}

  void touch(unsigned idx, Addr) override {
    lines_[idx].age = 255;
    lines_[idx].lru_seq = ++lru_counter_;
  }
  void fill(unsigned idx, Addr base) override { touch(idx, base); }
  // Counters deliberately survive reset(): invalidate_all never rewound
  // them in the pre-strategy controller.

 protected:
  std::vector<Line>& lines_;
  std::uint64_t lru_counter_ = 0;
};

class ApproxLruStrategy final : public LegacyStrategy {
 public:
  ApproxLruStrategy(std::vector<Line>& lines, unsigned decay_period)
      : LegacyStrategy(lines), decay_period_(decay_period) {}

  void host_tick() override {
    if (++access_count_ % decay_period_ == 0) {
      for (Line& l : lines_) {
        if (l.age > 0) --l.age;
      }
    }
  }

  int find_victim(Addr) override {
    int best = -1;
    unsigned best_age = 256;
    for (unsigned i = 0; i < lines_.size(); ++i) {
      const Line& l = lines_[i];
      if (l.state == LineState::kBusy) continue;
      if (l.age < best_age) {
        best_age = l.age;
        best = static_cast<int>(i);
      }
    }
    return best;
  }

 private:
  unsigned decay_period_;
  std::uint64_t access_count_ = 0;
};

class TrueLruStrategy final : public LegacyStrategy {
 public:
  using LegacyStrategy::LegacyStrategy;

  int find_victim(Addr) override {
    int best = -1;
    std::uint64_t best_seq = ~0ull;
    for (unsigned i = 0; i < lines_.size(); ++i) {
      const Line& l = lines_[i];
      if (l.state == LineState::kBusy) continue;
      if (l.lru_seq < best_seq) {
        best_seq = l.lru_seq;
        best = static_cast<int>(i);
      }
    }
    return best;
  }
};

class RandomStrategy final : public LegacyStrategy {
 public:
  using LegacyStrategy::LegacyStrategy;

  int find_victim(Addr) override {
    // Deterministic xorshift over the non-busy candidates. The per-miss
    // candidate vector is kept (despite the steady-state allocation) so the
    // rng_ consumption — and with it the victim stream — stays bit-identical
    // to the pre-strategy controller.
    std::vector<unsigned> candidates;
    candidates.reserve(lines_.size());
    for (unsigned i = 0; i < lines_.size(); ++i) {
      if (lines_[i].state != LineState::kBusy) candidates.push_back(i);
    }
    if (candidates.empty()) return -1;
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 17;
    rng_ ^= rng_ << 5;
    return static_cast<int>(candidates[rng_ % candidates.size()]);
  }

 private:
  std::uint32_t rng_ = 0x9E3779B9u;
};

// ------------------------------------------------------------------
// CLOCK — second chance over a reference bit per line
// ------------------------------------------------------------------

class ClockStrategy final : public ReplacementStrategy {
 public:
  explicit ClockStrategy(std::vector<Line>& lines)
      : lines_(lines), ref_(lines.size(), 0) {}

  void touch(unsigned idx, Addr) override { ref_[idx] = 1; }
  void fill(unsigned idx, Addr) override { ref_[idx] = 1; }
  void evict(unsigned idx, Addr) override { ref_[idx] = 0; }

  int find_victim(Addr) override {
    // First sweep clears blocking reference bits, the second one must then
    // find a victim; 2n+1 steps bound both even with busy holes.
    const auto n = static_cast<unsigned>(lines_.size());
    for (unsigned step = 0; step < 2 * n + 1; ++step) {
      const unsigned idx = hand_;
      hand_ = (hand_ + 1) % n;
      if (!resident(lines_[idx])) continue;
      if (ref_[idx] != 0) {
        ref_[idx] = 0;
        continue;
      }
      return static_cast<int>(idx);
    }
    return -1;  // nothing resident: every line busy computing
  }

  void reset() override {
    std::fill(ref_.begin(), ref_.end(), 0);
    hand_ = 0;
  }

 private:
  std::vector<Line>& lines_;
  std::vector<std::uint8_t> ref_;
  unsigned hand_ = 0;
};

// ------------------------------------------------------------------
// LRU-K (K = 2) — backward K-distance with retained history
// ------------------------------------------------------------------

class LruKStrategy final : public ReplacementStrategy {
 public:
  explicit LruKStrategy(std::vector<Line>& lines)
      : lines_(lines),
        last_(lines.size(), 0),
        prev_(lines.size(), 0),
        hist_(2 * lines.size()) {}

  void touch(unsigned idx, Addr) override {
    ++now_;
    prev_[idx] = last_[idx];
    last_[idx] = now_;
  }

  void fill(unsigned idx, Addr base) override {
    ++now_;
    prev_[idx] = take_history(base);  // 0 when the tag has no history
    last_[idx] = now_;
  }

  void evict(unsigned idx, Addr base) override {
    // Retained information: remember the evicted tag's reference times so a
    // re-reference keeps its finite K-distance (ring of 2c entries).
    for (HistEntry& h : hist_) {
      if (h.addr == base) {
        h.last = last_[idx];
        return;
      }
    }
    HistEntry& h = hist_[hist_next_];
    hist_next_ = (hist_next_ + 1) % static_cast<unsigned>(hist_.size());
    h.addr = base;
    h.last = last_[idx];
  }

  int find_victim(Addr) override {
    // Evict the line whose K-th most recent reference is oldest; lines with
    // fewer than K references (prev == 0) are infinitely old. Ties break on
    // the most recent reference, then the line index — all deterministic.
    int best = -1;
    for (unsigned i = 0; i < lines_.size(); ++i) {
      if (!resident(lines_[i])) continue;
      if (best < 0 || prev_[i] < prev_[best] ||
          (prev_[i] == prev_[best] && last_[i] < last_[best])) {
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  void reset() override {
    std::fill(last_.begin(), last_.end(), 0);
    std::fill(prev_.begin(), prev_.end(), 0);
    for (HistEntry& h : hist_) h = HistEntry{};
    hist_next_ = 0;
    now_ = 0;
  }

 private:
  struct HistEntry {
    Addr addr = kNoAddr;
    std::uint64_t last = 0;
  };
  static constexpr Addr kNoAddr = ~Addr{0};

  std::uint64_t take_history(Addr base) {
    for (HistEntry& h : hist_) {
      if (h.addr == base) {
        h.addr = kNoAddr;
        return h.last;
      }
    }
    return 0;
  }

  std::vector<Line>& lines_;
  std::vector<std::uint64_t> last_;
  std::vector<std::uint64_t> prev_;
  std::vector<HistEntry> hist_;
  unsigned hist_next_ = 0;
  std::uint64_t now_ = 0;
};

// ------------------------------------------------------------------
// Intrusive list machinery shared by ARC and CAR
// ------------------------------------------------------------------

constexpr std::uint16_t kNil = 0xFFFF;

enum ListId : std::uint8_t { kT1 = 0, kT2, kB1, kB2, kNumLists, kFree };

/// Four intrusive doubly-linked lists over one fixed node pool — no
/// allocation after construction. Convention: head = MRU / clock hand,
/// tail = LRU / clock insert position.
class ListSet {
 public:
  struct Node {
    Addr addr = 0;
    std::uint16_t prev = kNil;
    std::uint16_t next = kNil;
    std::uint16_t line = kNil;  // resident line index (T1/T2 only)
    std::uint8_t list = kFree;
    std::uint8_t ref = 0;  // CAR reference bit
  };

  explicit ListSet(unsigned pool_size) : nodes_(pool_size) { reset(); }

  Node& node(std::uint16_t h) { return nodes_[h]; }
  unsigned size(ListId id) const { return lists_[id].size; }

  std::uint16_t alloc() {
    if (free_head_ == kNil) return kNil;
    const std::uint16_t h = free_head_;
    free_head_ = nodes_[h].next;
    nodes_[h] = Node{};
    return h;
  }

  void release(std::uint16_t h) {
    nodes_[h].list = kFree;
    nodes_[h].next = free_head_;
    free_head_ = h;
  }

  void push_front(ListId id, std::uint16_t h) {
    List& l = lists_[id];
    Node& n = nodes_[h];
    n.list = id;
    n.prev = kNil;
    n.next = l.head;
    if (l.head != kNil) nodes_[l.head].prev = h;
    l.head = h;
    if (l.tail == kNil) l.tail = h;
    ++l.size;
  }

  void push_back(ListId id, std::uint16_t h) {
    List& l = lists_[id];
    Node& n = nodes_[h];
    n.list = id;
    n.next = kNil;
    n.prev = l.tail;
    if (l.tail != kNil) nodes_[l.tail].next = h;
    l.tail = h;
    if (l.head == kNil) l.head = h;
    ++l.size;
  }

  void unlink(std::uint16_t h) {
    Node& n = nodes_[h];
    List& l = lists_[n.list];
    if (n.prev != kNil) nodes_[n.prev].next = n.next;
    if (n.next != kNil) nodes_[n.next].prev = n.prev;
    if (l.head == h) l.head = n.next;
    if (l.tail == h) l.tail = n.prev;
    n.prev = n.next = kNil;
    --l.size;
  }

  std::uint16_t pop_front(ListId id) {
    const std::uint16_t h = lists_[id].head;
    ARCANE_ASSERT(h != kNil, "pop_front on empty replacement list");
    unlink(h);
    return h;
  }

  std::uint16_t pop_back(ListId id) {
    const std::uint16_t h = lists_[id].tail;
    ARCANE_ASSERT(h != kNil, "pop_back on empty replacement list");
    unlink(h);
    return h;
  }

  /// Linear probe (lists are bounded by the pool, so this is O(2c)).
  std::uint16_t find(ListId id, Addr a) const {
    for (std::uint16_t h = lists_[id].head; h != kNil; h = nodes_[h].next) {
      if (nodes_[h].addr == a) return h;
    }
    return kNil;
  }

  void reset() {
    for (List& l : lists_) l = List{};
    for (unsigned i = 0; i < nodes_.size(); ++i) {
      nodes_[i] = Node{};
      nodes_[i].next =
          i + 1 < nodes_.size() ? static_cast<std::uint16_t>(i + 1) : kNil;
    }
    free_head_ = nodes_.empty() ? kNil : 0;
  }

 private:
  struct List {
    std::uint16_t head = kNil;
    std::uint16_t tail = kNil;
    unsigned size = 0;
  };
  std::vector<Node> nodes_;
  List lists_[kNumLists];
  std::uint16_t free_head_ = kNil;
};

/// Common ARC/CAR state: resident lists/clocks T1+T2, ghost lists B1+B2
/// over a 2c node pool, the line→node index, and the self-tuning target p.
class GhostedStrategy : public ReplacementStrategy {
 public:
  explicit GhostedStrategy(std::vector<Line>& lines)
      : c_(static_cast<unsigned>(lines.size())),
        pool_(2 * static_cast<unsigned>(lines.size())),
        line_node_(lines.size(), kNil) {}

  void evict(unsigned idx, Addr) override {
    // Non-policy eviction (kernel claim): drop without ghosting. Victims
    // chosen by find_victim were already moved to a ghost list and have a
    // cleared line_node_ slot, so they fall through this no-op.
    const std::uint16_t h = line_node_[idx];
    if (h == kNil) return;
    line_node_[idx] = kNil;
    pool_.unlink(h);
    pool_.release(h);
  }

  void reset() override {
    pool_.reset();
    std::fill(line_node_.begin(), line_node_.end(), kNil);
    p_ = 0.0;
  }

 protected:
  /// Ghost lookup across B1 then B2; kNil when absent.
  std::uint16_t find_ghost(Addr a, bool& in_b2) const {
    std::uint16_t h = pool_.find(kB1, a);
    in_b2 = false;
    if (h == kNil && (h = pool_.find(kB2, a)) != kNil) in_b2 = true;
    return h;
  }

  /// Pool-exhaustion safety valve for claim-heavy interleavings the
  /// textbook trims cannot see: shed the coldest ghost to free a node.
  std::uint16_t shed_ghost() {
    const ListId from = pool_.size(kB2) > 0 ? kB2 : kB1;
    ARCANE_ASSERT(pool_.size(from) > 0,
                  "replacement node pool exhausted with no ghosts");
    const std::uint16_t h = pool_.pop_back(from);
    pool_.node(h) = ListSet::Node{};
    return h;
  }

  /// Demote a resident node to ghost list `ghost` and return its line.
  int demote(std::uint16_t h, ListId ghost, bool ghost_mru) {
    ListSet::Node& n = pool_.node(h);
    const int victim = n.line;
    line_node_[victim] = kNil;
    n.line = kNil;
    n.ref = 0;
    if (ghost_mru) {
      pool_.push_front(ghost, h);
    } else {
      pool_.push_back(ghost, h);
    }
    return victim;
  }

  unsigned c_;
  ListSet pool_;
  std::vector<std::uint16_t> line_node_;
  double p_ = 0.0;  // target size of T1 (recency side)
};

// ------------------------------------------------------------------
// ARC — Megiddo & Modha, "ARC: A Self-Tuning, Low Overhead Replacement
// Cache" (FAST'03). head = MRU, tail = LRU for all four lists.
// ------------------------------------------------------------------

class ArcStrategy final : public GhostedStrategy {
 public:
  using GhostedStrategy::GhostedStrategy;

  void touch(unsigned idx, Addr) override {
    // Case I: hit in T1 or T2 moves the page to the MRU end of T2.
    const std::uint16_t h = line_node_[idx];
    pool_.unlink(h);
    pool_.push_front(kT2, h);
  }

  void fill(unsigned idx, Addr base) override {
    bool in_b2 = false;
    std::uint16_t h = find_ghost(base, in_b2);
    ListId target = kT1;  // case IV: first reference goes to the top of T1
    if (h != kNil) {
      // Cases II/III: the ghost revives straight into T2 (the p adaptation
      // already happened in find_victim, where the REPLACE step lives).
      pool_.unlink(h);
      target = kT2;
    } else {
      h = pool_.alloc();
      if (h == kNil) h = shed_ghost();
    }
    ListSet::Node& n = pool_.node(h);
    n.addr = base;
    n.line = static_cast<std::uint16_t>(idx);
    pool_.push_front(target, h);
    line_node_[idx] = h;
  }

  int find_victim(Addr incoming) override {
    // Only reached when no Invalid line exists — the cache-full case
    // analysis of the original pseudocode.
    const auto b1 = pool_.size(kB1);
    const auto b2 = pool_.size(kB2);
    bool in_b2 = false;
    const std::uint16_t g = find_ghost(incoming, in_b2);
    if (g != kNil && !in_b2) {
      // Case II: hit in B1 — recency was undervalued, grow p.
      const double delta =
          b1 >= b2 ? 1.0 : static_cast<double>(b2) / static_cast<double>(b1);
      p_ = std::min(p_ + delta, static_cast<double>(c_));
    } else if (g != kNil) {
      // Case III: hit in B2 — frequency was undervalued, shrink p.
      const double delta =
          b2 >= b1 ? 1.0 : static_cast<double>(b1) / static_cast<double>(b2);
      p_ = std::max(p_ - delta, 0.0);
    } else {
      // Case IV: brand-new page — trim the directory to its 2c bound. The
      // comparisons are >= where the textbook has ==: fills that recycle an
      // Invalid line (freed by a kernel release) bypass this path entirely,
      // so T1 can overshoot the |T1|+|B1| <= c invariant between trims.
      const auto t1 = pool_.size(kT1);
      const auto total = t1 + pool_.size(kT2) + b1 + b2;
      if (t1 + b1 >= c_) {
        if (b1 > 0) {
          pool_.release(pool_.pop_back(kB1));
        } else if (t1 > 0) {
          // |T1| >= c: drop the T1 LRU outright, without ghosting.
          const std::uint16_t h = pool_.pop_back(kT1);
          const int victim = pool_.node(h).line;
          line_node_[victim] = kNil;
          pool_.release(h);
          return victim;
        }
      } else if (total >= 2 * c_) {
        if (b2 > 0) {
          pool_.release(pool_.pop_back(kB2));
        } else if (b1 > 0) {
          pool_.release(pool_.pop_back(kB1));
        }
      }
    }
    return replace(in_b2);
  }

 private:
  /// REPLACE(p): evict the T1 LRU into B1 when T1 exceeds its target,
  /// otherwise the T2 LRU into B2. Falls back across empty lists (possible
  /// under busy-line pinning); -1 when both are empty.
  int replace(bool in_b2) {
    const auto t1 = pool_.size(kT1);
    ListId from;
    if (t1 >= 1 && (static_cast<double>(t1) > p_ ||
                    (in_b2 && static_cast<double>(t1) == p_))) {
      from = kT1;
    } else if (pool_.size(kT2) >= 1) {
      from = kT2;
    } else if (t1 >= 1) {
      from = kT1;
    } else {
      return -1;  // every line is busy computing
    }
    return demote(pool_.pop_back(from), from == kT1 ? kB1 : kB2,
                  /*ghost_mru=*/true);
  }
};

// ------------------------------------------------------------------
// CAR — Bansal & Modha, "CAR: Clock with Adaptive Replacement" (FAST'04).
// T1/T2 are clocks: head = hand, tail = insert position; hits only set the
// reference bit. B1/B2 stay LRU lists (head = MRU).
// ------------------------------------------------------------------

class CarStrategy final : public GhostedStrategy {
 public:
  using GhostedStrategy::GhostedStrategy;

  void touch(unsigned idx, Addr) override {
    pool_.node(line_node_[idx]).ref = 1;
  }

  void fill(unsigned idx, Addr base) override {
    bool in_b2 = false;
    std::uint16_t h = find_ghost(base, in_b2);
    ListId target = kT2;  // history hit: straight into the T2 clock
    if (h != kNil) {
      // p adapts at insert time in CAR (after the REPLACE of find_victim).
      const auto b1 = pool_.size(kB1);
      const auto b2 = pool_.size(kB2);
      if (!in_b2) {
        p_ = std::min(p_ + std::max(1.0, static_cast<double>(b2) /
                                             static_cast<double>(b1)),
                      static_cast<double>(c_));
      } else {
        p_ = std::max(p_ - std::max(1.0, static_cast<double>(b1) /
                                             static_cast<double>(b2)),
                      0.0);
      }
      pool_.unlink(h);
    } else {
      h = pool_.alloc();
      if (h == kNil) h = shed_ghost();
      target = kT1;
    }
    ListSet::Node& n = pool_.node(h);
    n.addr = base;
    n.line = static_cast<std::uint16_t>(idx);
    n.ref = 0;  // CAR inserts with the reference bit off
    pool_.push_back(target, h);
    line_node_[idx] = h;
  }

  int find_victim(Addr incoming) override {
    const int victim = replace();
    if (victim >= 0) {
      // History replacement: trim the directory only for brand-new pages
      // (textbook order — after REPLACE, with the demoted ghost counted).
      // As in ARC, >= tolerates directory overshoot from fills that went
      // through Invalid lines freed by kernel releases.
      bool in_b2 = false;
      if (find_ghost(incoming, in_b2) == kNil) {
        const auto t1 = pool_.size(kT1);
        const auto b1 = pool_.size(kB1);
        const auto b2 = pool_.size(kB2);
        const auto total = t1 + pool_.size(kT2) + b1 + b2;
        if (t1 + b1 >= c_ && b1 > 0) {
          pool_.release(pool_.pop_back(kB1));
        } else if (total >= 2 * c_) {
          if (b2 > 0) {
            pool_.release(pool_.pop_back(kB2));
          } else if (b1 > 0) {
            pool_.release(pool_.pop_back(kB1));
          }
        }
      }
    }
    return victim;
  }

 private:
  int replace() {
    // Rotate the clocks until a hand finds a 0-ref page: T1 pages with a
    // set bit earn promotion into T2, T2 pages get a second chance at the
    // tail. Every step clears a bit or returns, so 2c+2 bounds the walk.
    for (unsigned guard = 2 * c_ + 2; guard-- > 0;) {
      const auto t1 = pool_.size(kT1);
      const bool use_t1 = (t1 >= 1 && static_cast<double>(t1) >=
                                          std::max(1.0, p_)) ||
                          pool_.size(kT2) == 0;
      if (use_t1) {
        if (t1 == 0) return -1;  // both clocks empty: all lines busy
        const std::uint16_t h = pool_.pop_front(kT1);
        if (pool_.node(h).ref == 0) {
          return demote(h, kB1, /*ghost_mru=*/true);
        }
        pool_.node(h).ref = 0;
        pool_.push_back(kT2, h);  // promotion: survived one T1 round
      } else {
        const std::uint16_t h = pool_.pop_front(kT2);
        if (pool_.node(h).ref == 0) {
          return demote(h, kB2, /*ghost_mru=*/true);
        }
        pool_.node(h).ref = 0;
        pool_.push_back(kT2, h);  // second chance within the T2 clock
      }
    }
    ARCANE_ASSERT(false, "CAR replace loop failed to terminate");
    return -1;
  }
};

}  // namespace

std::unique_ptr<ReplacementStrategy> make_replacement_strategy(
    const LlcConfig& cfg, std::vector<Line>& lines) {
  switch (cfg.replacement) {
    case ReplacementPolicy::kApproxLru:
      return std::make_unique<ApproxLruStrategy>(lines, cfg.lru_decay_period);
    case ReplacementPolicy::kTrueLru:
      return std::make_unique<TrueLruStrategy>(lines);
    case ReplacementPolicy::kRandom:
      return std::make_unique<RandomStrategy>(lines);
    case ReplacementPolicy::kClock:
      return std::make_unique<ClockStrategy>(lines);
    case ReplacementPolicy::kLruK:
      return std::make_unique<LruKStrategy>(lines);
    case ReplacementPolicy::kArc:
      return std::make_unique<ArcStrategy>(lines);
    case ReplacementPolicy::kCar:
      return std::make_unique<CarStrategy>(lines);
  }
  ARCANE_CHECK(false, "unknown LLC replacement policy id "
                          << static_cast<unsigned>(cfg.replacement));
  return nullptr;
}

}  // namespace arcane::llc
