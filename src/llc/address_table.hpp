// Address Table (AT) — paper §III-A3.
//
// Tracks the memory ranges of kernel source and destination operands while
// kernels are pending, so the controller can stall exactly the host
// accesses that would violate ordering:
//   * WAR: host stores to a *source* range stall until operand allocation
//     into the VPU completes.
//   * RAW/WAW: any host access to a *destination* range stalls until the
//     kernel write-back completes.
// Entries carry a `free_at` time once the release instant is known; until
// then the host drains simulator events to make progress (see DESIGN.md).
#ifndef ARCANE_LLC_ADDRESS_TABLE_HPP_
#define ARCANE_LLC_ADDRESS_TABLE_HPP_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace arcane::llc {

inline constexpr Cycle kUnknownTime = std::numeric_limits<Cycle>::max();

struct AtEntry {
  Addr lo = 0, hi = 0;  // [lo, hi)
  bool is_dest = false;
  bool active = false;
  Cycle free_at = kUnknownTime;
  std::uint64_t kernel_uid = 0;
};

class AddressTable {
 public:
  explicit AddressTable(unsigned capacity = 64) : entries_(capacity) {}

  /// Register a range; returns the entry id. Throws when the (statically
  /// sized, paper §IV-B) table is full.
  unsigned register_range(Addr lo, Addr hi, bool is_dest,
                          std::uint64_t kernel_uid) {
    ARCANE_CHECK(lo < hi, "empty AT range");
    for (unsigned i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].active) {
        entries_[i] = AtEntry{lo, hi, is_dest, true, kUnknownTime, kernel_uid};
        ++active_count_;
        return i;
      }
    }
    throw Error("address table full");
  }

  void set_free_time(unsigned idx, Cycle when) {
    ARCANE_ASSERT(idx < entries_.size() && entries_[idx].active,
                  "set_free_time on inactive AT entry " << idx);
    entries_[idx].free_at = when;
  }

  void release(unsigned idx) {
    ARCANE_ASSERT(idx < entries_.size() && entries_[idx].active,
                  "release of inactive AT entry " << idx);
    entries_[idx].active = false;
    --active_count_;
  }

  bool any_active() const { return active_count_ > 0; }
  unsigned active_count() const { return active_count_; }
  const AtEntry& entry(unsigned idx) const { return entries_[idx]; }

  /// Entry blocking a host access, or nullptr. Reads of sources are legal;
  /// everything overlapping an active destination blocks.
  const AtEntry* blocking(Addr addr, unsigned len, bool is_write) const {
    if (active_count_ == 0) return nullptr;
    const Addr end = addr + len;
    for (const AtEntry& e : entries_) {
      if (!e.active) continue;
      if (addr < e.hi && e.lo < end) {
        if (e.is_dest || is_write) return &e;
      }
    }
    return nullptr;
  }

  /// True when any active entry overlaps [addr, addr+len).
  bool overlaps(Addr addr, unsigned len) const {
    if (active_count_ == 0) return false;
    const Addr end = addr + len;
    for (const AtEntry& e : entries_) {
      if (e.active && addr < e.hi && e.lo < end) return true;
    }
    return false;
  }

 private:
  std::vector<AtEntry> entries_;
  unsigned active_count_ = 0;
};

}  // namespace arcane::llc

#endif  // ARCANE_LLC_ADDRESS_TABLE_HPP_
