// Discrete-event simulation kernel.
//
// The ARCANE simulator uses a conservative discrete-event scheme: the host
// CPU is the driving actor (it executes instructions and advances its local
// clock), while the cache-side machinery (bridge, C-RT, DMA, VPUs) runs as
// events on this queue. Before every host<->LLC interaction the queue is
// drained up to the host's local time, so all shared state the host observes
// is causally consistent. When the host *blocks* (AT hazard, lock, no free
// victim line), events are executed one at a time — re-checking the blocking
// predicate after each — until the stall resolves.
//
// Implementation: a two-level calendar queue tuned for the simulator's
// schedule pattern (almost every event lands within a few hundred cycles of
// `now`, a few stragglers — refresh, open-loop arrivals — land far out).
//
//  * Near events (`when - base < kSpan`) go to a ring of per-cycle buckets.
//    A bucket is an append-only vector drained through a head cursor, so
//    scheduling is push_back into recycled capacity and draining is a
//    linear walk — no per-event heap sift, no allocation after warm-up.
//    Same-cycle events run in scheduling order because appends are already
//    in `seq` order (the calendar never reorders within a cycle).
//  * Far events overflow into a small binary heap ordered by (when, seq).
//    Whenever the calendar window advances, events that fell inside it
//    migrate into their buckets — heap pop order is (when, seq), so
//    migration preserves the same-cycle FIFO invariant.
//
// A 256-bit occupancy bitmap (one bit per bucket) finds the next populated
// cycle with word scans instead of probing empty buckets, and `run_until`
// drains whole buckets per `now_` update. Callbacks are sim::Callback —
// inline storage, no heap per event (see callback.hpp).
//
// Ordering is exactly (when, seq) ascending — identical to the previous
// std::priority_queue kernel, so every simulated result is bit-identical
// (pinned by tests/event_queue_test.cpp and the blessed bench baselines).
#ifndef ARCANE_SIM_EVENT_QUEUE_HPP_
#define ARCANE_SIM_EVENT_QUEUE_HPP_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "sim/callback.hpp"

namespace arcane::sim {

class EventQueue {
 public:
  using Callback = sim::Callback;

  /// Schedule `fn` to run at absolute cycle `when`. Events scheduled for the
  /// same cycle run in scheduling order (stable, deterministic).
  void schedule(Cycle when, Callback fn, const char* tag = "") {
    ARCANE_ASSERT(when >= now_, "event scheduled in the past: " << tag << " @"
                                << when << " < now " << now_);
    // With an empty calendar the window can hop forward for free (no event
    // constrains base_), keeping near-future schedules in the fast ring even
    // after long quiet stretches.
    if (when - base_ >= kSpan && ring_count_ == 0 && now_ > base_) {
      advance_base(now_);
    }
    ++pending_;
    const std::uint64_t seq = seq_++;
    if (when - base_ < kSpan) {
      push_bucket(when, std::move(fn));
    } else {
      far_.push_back(FarEvent{when, seq, std::move(fn)});
      std::push_heap(far_.begin(), far_.end(), FarLater{});
    }
  }

  /// Execute every event with timestamp <= `t`. `now()` afterwards is the
  /// max of its previous value, `t`, and the last executed event time.
  void run_until(Cycle t) {
    for (;;) {
      Cycle c;
      if (ring_count_ != 0) {
        c = ring_next();
      } else if (!far_.empty()) {
        c = far_.front().when;
      } else {
        break;
      }
      if (c > t) break;
      advance_base(c);
      if (c > now_) now_ = c;
      Bucket& b = buckets_[c & kMask];
      // Index-based drain: events may append same-cycle events mid-walk.
      while (b.head < b.events.size()) {
        Callback fn = std::move(b.events[b.head]);
        ++b.head;
        --pending_;
        --ring_count_;
        ++executed_;
        fn();
      }
      b.events.clear();
      b.head = 0;
      clear_bit(static_cast<std::uint32_t>(c & kMask));
    }
    if (t > now_) now_ = t;
  }

  /// Execute exactly the next event (used while an actor is blocked).
  /// Returns the time the event ran at.
  Cycle run_one() {
    ARCANE_ASSERT(pending_ != 0, "run_one on empty event queue");
    const Cycle c = next_time();
    advance_base(c);
    Bucket& b = buckets_[c & kMask];
    Callback fn = std::move(b.events[b.head]);
    ++b.head;
    if (b.head == b.events.size()) {
      b.events.clear();
      b.head = 0;
      clear_bit(static_cast<std::uint32_t>(c & kMask));
    }
    if (c > now_) now_ = c;
    --pending_;
    --ring_count_;
    ++executed_;
    fn();
    return c;
  }

  /// Drain the queue completely (used at end-of-run to settle async work).
  void run_all() {
    while (pending_ != 0) run_one();
  }

  bool empty() const { return pending_ == 0; }
  std::size_t pending() const { return pending_; }
  Cycle next_time() const {
    ARCANE_ASSERT(pending_ != 0, "next_time on empty queue");
    // Ring events always precede far events (invariant: far `when`s lie at
    // or beyond the window end), so the earliest populated bucket wins.
    if (ring_count_ != 0) return ring_next();
    return far_.front().when;
  }

  /// Time of the latest executed event / run_until horizon.
  Cycle now() const { return now_; }
  std::uint64_t executed() const { return executed_; }

 private:
  static constexpr std::uint32_t kSpanLog2 = 8;  // 256-cycle calendar window
  static constexpr std::uint32_t kSpan = 1u << kSpanLog2;
  static constexpr std::uint32_t kMask = kSpan - 1;
  static constexpr std::uint32_t kWords = kSpan / 64;

  struct Bucket {
    std::vector<Callback> events;
    std::size_t head = 0;  // events [head, size) are still pending
  };
  struct FarEvent {
    Cycle when;
    std::uint64_t seq;
    Callback fn;
  };
  struct FarLater {
    bool operator()(const FarEvent& a, const FarEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO among same-cycle events
    }
  };

  void set_bit(std::uint32_t idx) { occ_[idx >> 6] |= 1ull << (idx & 63); }
  void clear_bit(std::uint32_t idx) { occ_[idx >> 6] &= ~(1ull << (idx & 63)); }

  void push_bucket(Cycle when, Callback fn) {
    const auto idx = static_cast<std::uint32_t>(when & kMask);
    Bucket& b = buckets_[idx];
    if (b.events.empty()) set_bit(idx);
    b.events.push_back(std::move(fn));
    ++ring_count_;
  }

  /// Smallest bucket index in [lo, hi) with pending events, or kSpan.
  std::uint32_t first_set_in(std::uint32_t lo, std::uint32_t hi) const {
    std::uint32_t w = lo >> 6;
    std::uint64_t word = occ_[w] & (~0ull << (lo & 63));
    for (;;) {
      if (word != 0) {
        const std::uint32_t idx =
            (w << 6) + static_cast<std::uint32_t>(std::countr_zero(word));
        return idx < hi ? idx : kSpan;
      }
      if (++w >= ((hi + 63) >> 6)) return kSpan;
      word = occ_[w];
    }
  }

  /// Cycle of the earliest pending ring event (ring_count_ != 0).
  Cycle ring_next() const {
    const auto s = static_cast<std::uint32_t>(base_ & kMask);
    std::uint32_t idx = first_set_in(s, kSpan);
    if (idx != kSpan) return base_ + (idx - s);
    idx = first_set_in(0, s);
    ARCANE_ASSERT(idx != kSpan, "ring count out of sync with occupancy");
    return base_ + (idx + kSpan - s);
  }

  /// Move the calendar window start to `c` (<= every pending event) and pull
  /// far events that now fall inside [c, c + kSpan) into their buckets.
  void advance_base(Cycle c) {
    if (c <= base_) return;
    base_ = c;
    while (!far_.empty() && far_.front().when - base_ < kSpan) {
      std::pop_heap(far_.begin(), far_.end(), FarLater{});
      FarEvent fe = std::move(far_.back());
      far_.pop_back();
      push_bucket(fe.when, std::move(fe.fn));
    }
  }

  Bucket buckets_[kSpan];
  std::uint64_t occ_[kWords] = {};
  std::vector<FarEvent> far_;  // min-heap on (when, seq) via FarLater
  Cycle base_ = 0;             // calendar window is [base_, base_ + kSpan)
  std::size_t ring_count_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  Cycle now_ = 0;
};

}  // namespace arcane::sim

#endif  // ARCANE_SIM_EVENT_QUEUE_HPP_
