// Discrete-event simulation kernel.
//
// The ARCANE simulator uses a conservative discrete-event scheme: the host
// CPU is the driving actor (it executes instructions and advances its local
// clock), while the cache-side machinery (bridge, C-RT, DMA, VPUs) runs as
// events on this queue. Before every host<->LLC interaction the queue is
// drained up to the host's local time, so all shared state the host observes
// is causally consistent. When the host *blocks* (AT hazard, lock, no free
// victim line), events are executed one at a time — re-checking the blocking
// predicate after each — until the stall resolves.
#ifndef ARCANE_SIM_EVENT_QUEUE_HPP_
#define ARCANE_SIM_EVENT_QUEUE_HPP_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace arcane::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to run at absolute cycle `when`. Events scheduled for the
  /// same cycle run in scheduling order (stable, deterministic).
  void schedule(Cycle when, Callback fn, const char* tag = "") {
    ARCANE_ASSERT(when >= now_, "event scheduled in the past: " << tag << " @"
                                << when << " < now " << now_);
    heap_.push(Event{when, seq_++, std::move(fn), tag});
  }

  /// Execute every event with timestamp <= `t`. `now()` afterwards is the
  /// max of its previous value, `t`, and the last executed event time.
  void run_until(Cycle t) {
    while (!heap_.empty() && heap_.top().when <= t) run_one();
    if (t > now_) now_ = t;
  }

  /// Execute exactly the next event (used while an actor is blocked).
  /// Returns the time the event ran at.
  Cycle run_one() {
    ARCANE_ASSERT(!heap_.empty(), "run_one on empty event queue");
    Event ev = heap_.top();
    heap_.pop();
    if (ev.when > now_) now_ = ev.when;
    ++executed_;
    ev.fn();
    return ev.when;
  }

  /// Drain the queue completely (used at end-of-run to settle async work).
  void run_all() {
    while (!heap_.empty()) run_one();
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  Cycle next_time() const {
    ARCANE_ASSERT(!heap_.empty(), "next_time on empty queue");
    return heap_.top().when;
  }

  /// Time of the latest executed event / run_until horizon.
  Cycle now() const { return now_; }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    Callback fn;
    const char* tag;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO among same-cycle events
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  Cycle now_ = 0;
};

}  // namespace arcane::sim

#endif  // ARCANE_SIM_EVENT_QUEUE_HPP_
