// Small-buffer-optimized callback for the event kernel.
//
// Every event the simulator schedules captures at most a `this` pointer and
// an index or two; std::function heap-allocates (or at best burns 32+ bytes
// and an indirect call through a type-erasure control block) for each of
// them. sim::Callback stores the closure inline — scheduling an event never
// touches the allocator — and relocation of a trivially-copyable closure is
// a plain memcpy, so moving events through calendar buckets costs no
// indirect calls. Captures larger than the inline buffer degrade gracefully
// to one heap allocation, keeping this a drop-in std::function<void()>
// replacement.
#ifndef ARCANE_SIM_CALLBACK_HPP_
#define ARCANE_SIM_CALLBACK_HPP_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace arcane::sim {

class Callback {
 public:
  /// Inline capture budget: a `this` pointer plus a few words of state.
  /// Every hot-path callback in the simulator fits (the QoS admission
  /// closure, which captures a whole JobSpec, takes the heap fallback —
  /// one allocation per *job*, not per event).
  static constexpr std::size_t kInlineBytes = 32;

  Callback() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in functor
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* p);
    /// Move-construct the closure into `dst` and destroy the `src` copy.
    /// nullptr = trivially relocatable: a memcpy of the storage suffices.
    void (*relocate)(void* dst, void* src);
    /// nullptr = trivially destructible: nothing to do on reset.
    void (*destroy)(void* p);
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr bool trivially_relocatable =
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      trivially_relocatable<D>
          ? nullptr
          : +[](void* dst, void* src) {
              ::new (dst) D(std::move(*static_cast<D*>(src)));
              static_cast<D*>(src)->~D();
            },
      trivially_relocatable<D> ? nullptr
                               : +[](void* p) { static_cast<D*>(p)->~D(); },
  };

  // The heap fallback relocates by moving the owning pointer (a memcpy) but
  // still needs a destroy hook to delete the closure.
  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      nullptr,
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      }
      other.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(void*) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace arcane::sim

#endif  // ARCANE_SIM_CALLBACK_HPP_
