// Statistics collected by the simulator. Plain aggregates (Core Guidelines
// C.1: use struct when members can vary independently); every component owns
// one and the system aggregates them into a run report.
#ifndef ARCANE_SIM_STATS_HPP_
#define ARCANE_SIM_STATS_HPP_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace arcane::sim {

/// Host CPU execution statistics.
struct CpuStats {
  std::uint64_t instructions = 0;
  std::uint64_t compressed_instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t mul_div = 0;
  std::uint64_t simd_ops = 0;        // XCVPULP packed-SIMD instructions
  std::uint64_t hw_loop_iterations = 0;
  std::uint64_t offloads = 0;        // CV-X-IF transactions
  Cycle cycles = 0;
  Cycle stall_cycles = 0;            // cycles waiting on the memory port
};

/// Why the LLC made a host request wait.
struct StallBreakdown {
  Cycle lock = 0;          // controller locked by the Matrix Allocator
  Cycle at_source = 0;     // WAR: store to a registered source operand
  Cycle at_dest = 0;       // RAW/WAW: access to a pending destination
  Cycle busy_lines = 0;    // no victim available (lines busy computing)
  Cycle miss = 0;          // plain refill latency
  Cycle dma_contention = 0;  // waiting for the shared DMA engine

  Cycle total() const {
    return lock + at_source + at_dest + busy_lines + miss + dma_contention;
  }
};

/// Exclusive cycle buckets a dispatched kernel op's lifetime decomposes
/// into (docs/OBSERVABILITY.md "Cycle accounting"). The buckets partition
/// [ready, finish] exactly — sum(buckets) == op latency — so a latency
/// regression can be attributed to exactly one resource:
///
///   queue_wait    ready in an instance queue, no hazard recorded yet
///   hazard_defer  held back by an operand-range hazard (WAR/WAW/RAW with
///                 an in-flight or older conflicting queued op)
///   dispatch      shared-eCPU work and contention: decode + preamble +
///                 scheduling, waiting for the eCPU between phases
///   alloc         Matrix Allocator: claim/descriptor programming plus the
///                 on-chip share of the allocation transfer
///   mem_refill    external-backend share of allocation transfers (bursts
///                 + bus beats priced by the mem backend)
///   mem_dma       waiting for the shared DMA engine (owned by another
///                 kernel's transfer)
///   compute       VPU micro-program execution
///   writeback     write-back programming + transfer + epilogue
///   retry_backoff failure handling (src/fault/): cycles between a failed
///                 or watchdog-aborted attempt and the op's requeue
enum class StallBucket : unsigned {
  kQueueWait = 0,
  kHazardDefer,
  kDispatch,
  kAlloc,
  kMemRefill,
  kMemDma,
  kCompute,
  kWriteback,
  kRetryBackoff,
  kCount,
};

constexpr unsigned kNumStallBuckets =
    static_cast<unsigned>(StallBucket::kCount);

constexpr const char* stall_bucket_name(StallBucket b) {
  switch (b) {
    case StallBucket::kQueueWait: return "queue_wait";
    case StallBucket::kHazardDefer: return "hazard_defer";
    case StallBucket::kDispatch: return "dispatch";
    case StallBucket::kAlloc: return "alloc";
    case StallBucket::kMemRefill: return "mem_refill";
    case StallBucket::kMemDma: return "mem_dma";
    case StallBucket::kCompute: return "compute";
    case StallBucket::kWriteback: return "writeback";
    case StallBucket::kRetryBackoff: return "retry_backoff";
    case StallBucket::kCount: break;
  }
  return "?";
}

/// One op's (or an accumulated total's) cycles per StallBucket. Plain
/// integer adds on the simulator's existing event boundaries: recording is
/// deterministic and never perturbs timing ("free when read").
struct OpStallBreakdown {
  std::array<Cycle, kNumStallBuckets> cycles{};

  Cycle& operator[](StallBucket b) {
    return cycles[static_cast<unsigned>(b)];
  }
  Cycle operator[](StallBucket b) const {
    return cycles[static_cast<unsigned>(b)];
  }

  Cycle total() const {
    Cycle sum = 0;
    for (const Cycle c : cycles) sum += c;
    return sum;
  }

  OpStallBreakdown& operator+=(const OpStallBreakdown& o) {
    for (unsigned i = 0; i < kNumStallBuckets; ++i) cycles[i] += o.cycles[i];
    return *this;
  }
};

/// LLC cache statistics.
struct CacheStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;        // dirty evictions
  std::uint64_t refills = 0;
  std::uint64_t kernel_line_claims = 0;  // lines claimed for computing
  StallBreakdown stalls{};

  double hit_rate() const {
    const auto acc = hits + misses;
    return acc ? static_cast<double>(hits) / static_cast<double>(acc) : 0.0;
  }
};

/// DMA engine statistics.
struct DmaStats {
  std::uint64_t descriptors = 0;
  std::uint64_t bytes_from_external = 0;
  std::uint64_t bytes_from_cache = 0;   // allocation reads forwarded on hit
  std::uint64_t bytes_to_external = 0;
  std::uint64_t bytes_to_cache = 0;     // kernel write-back (fetch-on-write)
  Cycle busy_cycles = 0;
};

/// Per-VPU statistics.
struct VpuStats {
  std::uint64_t instructions = 0;
  std::uint64_t elements = 0;
  std::uint64_t macs = 0;          // multiply-accumulate element operations
  Cycle busy_cycles = 0;
  std::uint64_t kernels = 0;
};

/// C-RT phase accounting — the quantities behind Figure 3.
/// `preamble` is host-visible (synchronous SW decode + xmr/kernel preamble);
/// the others are the asynchronous kernel pipeline phases.
struct CrtPhaseStats {
  Cycle preamble = 0;
  Cycle allocation = 0;
  Cycle compute = 0;
  Cycle writeback = 0;
  Cycle scheduling = 0;  // folded into "allocation" in the paper's plot
  std::uint64_t kernels_executed = 0;
  std::uint64_t xmr_executed = 0;
  std::uint64_t dma_descriptors = 0;
  std::uint64_t renames = 0;          // hazard-checker matrix renames
  std::uint64_t writebacks_elided = 0;  // rows forwarded dest -> source
  std::uint64_t full_elisions = 0;      // write-backs skipped entirely
  Cycle ecpu_busy = 0;  // eCPU active cycles (rest = C-RT deep-sleep)

  Cycle pipeline_total() const {
    return allocation + compute + writeback + scheduling;
  }
};

/// Per-tenant accounting of the kernel-offload scheduler (src/sched/): one
/// request stream's job throughput, end-to-end latency and queueing delay.
struct TenantStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_dropped = 0;     // shed on deadline expiry (src/qos/)
  std::uint64_t jobs_on_time = 0;     // completed within deadline (or none)
  std::uint64_t deadline_misses = 0;  // completed after their deadline
  std::uint64_t ops_completed = 0;
  std::uint64_t jobs_failed = 0;  // retries exhausted (src/fault/)
  std::uint64_t retries = 0;      // op re-dispatches after a failure
  std::uint64_t failovers = 0;    // retries landing on a different instance
  Cycle total_job_latency = 0;  // sum over jobs of (completion - arrival)
  Cycle total_queue_wait = 0;   // sum over ops of (dispatch - ready)
  Cycle last_completion = 0;

  double mean_job_latency() const {
    return jobs_completed
               ? static_cast<double>(total_job_latency) /
                     static_cast<double>(jobs_completed)
               : 0.0;
  }
};

/// Global kernel-offload scheduler statistics.
struct SchedStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t ops_dispatched = 0;
  std::uint64_t ops_completed = 0;
  /// Idle-instance dispatch scans in which every queued op was held back by
  /// an operand-range overlap — with an in-flight kernel or with an older
  /// conflicting queued op (one count per instance per scan, not per
  /// delayed op).
  std::uint64_t hazard_deferrals = 0;
  std::uint64_t jobs_dropped = 0;     // shed on deadline expiry (src/qos/)
  std::uint64_t deadline_misses = 0;  // jobs completed after their deadline
  std::uint64_t ops_cancelled = 0;    // undispatched ops of dropped jobs
  // Failure handling (src/fault/) — all zero when no fault plan is active.
  std::uint64_t jobs_failed = 0;      // dropped after retry exhaustion
  std::uint64_t retries = 0;          // op re-dispatches after a failure
  std::uint64_t failovers = 0;        // retries landing on another instance
  std::uint64_t watchdog_fires = 0;   // hung ops aborted by the watchdog
  std::uint64_t quarantines = 0;      // instances quarantined for failures
  Cycle total_queue_wait = 0;          // sum over ops of (dispatch - ready)
  Cycle makespan = 0;                  // completion time of the last job
  std::vector<Cycle> instance_occupied;  // dispatch->finish time per instance
};

/// Per-tenant accounting of the QoS admission controller (src/qos/): every
/// offered job is either accepted into the scheduler or rejected with one
/// of three reasons. Drops and deadline misses of *accepted* jobs live in
/// TenantStats (the scheduler sheds; the controller only gatekeeps).
struct QosTenantStats {
  std::uint64_t jobs_offered = 0;
  std::uint64_t jobs_accepted = 0;
  std::uint64_t rejected_queue_cap = 0;  // outstanding-job cap hit
  std::uint64_t rejected_rate = 0;       // token bucket empty
  std::uint64_t rejected_deadline = 0;   // backlog projection misses deadline
  std::uint64_t max_outstanding = 0;     // peak admitted-but-unresolved jobs

  std::uint64_t jobs_rejected() const {
    return rejected_queue_cap + rejected_rate + rejected_deadline;
  }
};

}  // namespace arcane::sim

#endif  // ARCANE_SIM_STATS_HPP_
