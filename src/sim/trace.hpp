// Lightweight event tracer: a bounded ring of timestamped, categorized
// messages recorded by the simulator components (bridge offloads, C-RT
// decode and kernel phases, cache misses/stalls, DMA transfers). Disabled
// by default — recording costs nothing beyond a branch.
//
//   sys.tracer().enable(sim::TraceCategory::kAll);
//   ... run ...
//   sys.tracer().dump(std::cout);
#ifndef ARCANE_SIM_TRACE_HPP_
#define ARCANE_SIM_TRACE_HPP_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <sstream>
#include <string>

#include "common/types.hpp"

namespace arcane::sim {

enum class TraceCategory : std::uint8_t {
  kOffload = 0,  // CV-X-IF transactions and decode outcomes
  kKernel,       // C-RT kernel lifecycle (schedule, tiles, completion)
  kCache,        // misses, evictions, hazard stalls
  kDma,          // transfers
  kCategoryCount,
};

constexpr std::uint8_t trace_bit(TraceCategory c) {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(c));
}
inline constexpr std::uint8_t kTraceAll = 0x0F;

const char* trace_category_name(TraceCategory c);

struct TraceEvent {
  Cycle time = 0;
  TraceCategory category = TraceCategory::kOffload;
  std::string message;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Enable a set of categories (bitmask of trace_bit()); kTraceAll for all.
  void enable(std::uint8_t categories = kTraceAll) { mask_ = categories; }
  void disable() { mask_ = 0; }
  bool enabled(TraceCategory c) const { return (mask_ & trace_bit(c)) != 0; }

  void record(Cycle t, TraceCategory c, std::string msg) {
    if (!enabled(c)) return;
    if (events_.size() == capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(TraceEvent{t, c, std::move(msg)});
  }

  /// Convenience: stream-style message building, evaluated only if enabled.
  template <typename Fn>
  void record_lazy(Cycle t, TraceCategory c, Fn&& build) {
    if (!enabled(c)) return;
    std::ostringstream os;
    build(os);
    record(t, c, os.str());
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  void dump(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::uint8_t mask_ = 0;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace arcane::sim

#endif  // ARCANE_SIM_TRACE_HPP_
