#include "sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace arcane::sim {

const char* trace_category_name(TraceCategory c) {
  switch (c) {
    case TraceCategory::kOffload: return "offload";
    case TraceCategory::kKernel: return "kernel";
    case TraceCategory::kCache: return "cache";
    case TraceCategory::kDma: return "dma";
    case TraceCategory::kCategoryCount: break;
  }
  return "?";
}

void Tracer::dump(std::ostream& os) const {
  if (dropped_ > 0) {
    os << "... (" << dropped_ << " earlier events dropped)\n";
  }
  for (const TraceEvent& e : events_) {
    os << std::setw(10) << e.time << "  " << std::setw(8) << std::left
       << trace_category_name(e.category) << std::right << "  " << e.message
       << '\n';
  }
}

}  // namespace arcane::sim
