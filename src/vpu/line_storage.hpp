// Shared storage backing both the LLC data array and the VPU vector
// register files — in ARCANE they are the *same* SRAM macros: the cache is
// organised as (num_vpus x num_vregs) lines of VLEN bytes, and line
// (vpu*num_vregs + vreg) is VPU `vpu`'s vector register `vreg` (§III-A1).
#ifndef ARCANE_VPU_LINE_STORAGE_HPP_
#define ARCANE_VPU_LINE_STORAGE_HPP_

#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"

namespace arcane::vpu {

class LineStorage {
 public:
  explicit LineStorage(const LlcConfig& cfg)
      : num_lines_(cfg.num_lines()),
        line_bytes_(cfg.line_bytes()),
        vregs_per_vpu_(cfg.vpu.num_vregs),
        data_(static_cast<std::size_t>(num_lines_) * line_bytes_, 0) {}

  unsigned num_lines() const { return num_lines_; }
  unsigned line_bytes() const { return line_bytes_; }

  std::span<std::uint8_t> line(unsigned idx) {
    ARCANE_ASSERT(idx < num_lines_, "line index " << idx << " out of range");
    return {data_.data() + static_cast<std::size_t>(idx) * line_bytes_,
            line_bytes_};
  }
  std::span<const std::uint8_t> line(unsigned idx) const {
    ARCANE_ASSERT(idx < num_lines_, "line index " << idx << " out of range");
    return {data_.data() + static_cast<std::size_t>(idx) * line_bytes_,
            line_bytes_};
  }

  unsigned line_of(unsigned vpu, unsigned vreg) const {
    ARCANE_ASSERT(vreg < vregs_per_vpu_, "vreg " << vreg << " out of range");
    return vpu * vregs_per_vpu_ + vreg;
  }

  std::span<std::uint8_t> vreg(unsigned vpu, unsigned vreg_idx) {
    return line(line_of(vpu, vreg_idx));
  }
  std::span<const std::uint8_t> vreg(unsigned vpu, unsigned vreg_idx) const {
    return line(line_of(vpu, vreg_idx));
  }

 private:
  unsigned num_lines_;
  unsigned line_bytes_;
  unsigned vregs_per_vpu_;
  std::vector<std::uint8_t> data_;
};

}  // namespace arcane::vpu

#endif  // ARCANE_VPU_LINE_STORAGE_HPP_
