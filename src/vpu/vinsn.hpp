// The near-memory vector ISA executed by the NM-Carus-style VPUs.
//
// This re-creates the custom vector-like RISC-V extension of NM-Carus
// (paper [3]) at the level of detail ARCANE relies on: 32 vector registers
// of VLEN bytes, element widths of 8/16/32 bits, and vector-vector (.vv),
// vector-scalar (.vx) and element-scalar (.es) operand forms. C-RT kernels
// are micro-programs over this ISA, dispatched by the eCPU (§IV).
//
// Two additions beyond a minimal RVV-like subset are required by the matrix
// kernels and documented here:
//  * kMaccEs    — vd[i] += vs1[idx] * vs2[i]: MAC with the scalar taken from
//                 an *element* of another vector register (GeMM inner loop,
//                 avoids round-tripping operands through the eCPU).
//  * kGatherStride — vd[i] = vs1[i*stride + off]: strided in-register gather
//                 (max-pooling horizontal reduction). Costs extra cycles due
//                 to bank conflicts (VpuConfig::gather_penalty).
#ifndef ARCANE_VPU_VINSN_HPP_
#define ARCANE_VPU_VINSN_HPP_

#include <cstdint>
#include <string>

#include "common/bits.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace arcane::vpu {

enum class VOpc : std::uint8_t {
  kAddVV, kAddVX, kSubVV, kSubVX, kRsubVX,
  kMulVV, kMulVX,
  kMaccVV, kMaccVX, kMaccEs,
  kMinVV, kMinVX, kMaxVV, kMaxVX,
  kAndVV, kAndVX, kOrVV, kOrVX, kXorVV, kXorVX,
  kSllVX, kSrlVX, kSraVX,
  kSlideDownVX, kSlideUpVX,
  kMvVV, kMvVX,
  kGatherStride,
  kOpcCount,
};

const char* vopc_name(VOpc op);

/// One vector instruction as dispatched to a VPU. `scalar` carries the .vx
/// scalar operand (sign-extended as needed per element width), the slide
/// amount, the element index for .es, or pack16(stride, offset) for gathers.
struct VInsn {
  VOpc op = VOpc::kMvVV;
  std::uint8_t vd = 0;
  std::uint8_t vs1 = 0;
  std::uint8_t vs2 = 0;
  ElemType et = ElemType::kWord;
  std::uint32_t vl = 0;       // elements
  std::uint32_t scalar = 0;

  bool operator==(const VInsn&) const = default;
};

/// True for ops whose scalar operand comes from the `scalar` field.
constexpr bool vinsn_uses_scalar(VOpc op) {
  switch (op) {
    case VOpc::kAddVX: case VOpc::kSubVX: case VOpc::kRsubVX:
    case VOpc::kMulVX: case VOpc::kMaccVX: case VOpc::kMinVX:
    case VOpc::kMaxVX: case VOpc::kAndVX: case VOpc::kOrVX:
    case VOpc::kXorVX: case VOpc::kSllVX: case VOpc::kSrlVX:
    case VOpc::kSraVX: case VOpc::kSlideDownVX: case VOpc::kSlideUpVX:
    case VOpc::kMvVX: case VOpc::kMaccEs: case VOpc::kGatherStride:
      return true;
    default:
      return false;
  }
}

constexpr bool vinsn_is_mac(VOpc op) {
  return op == VOpc::kMaccVV || op == VOpc::kMaccVX || op == VOpc::kMaccEs;
}

/// Execution cycles on a VPU with the given configuration: pipeline fill +
/// one beat per `lanes * (4/elem_bytes)` elements (sub-word SIMD within each
/// 32-bit lane), with a bank-conflict penalty for strided gathers and one
/// extra cycle for the element-scalar read of .es forms.
Cycle vinsn_cycles(const VInsn& insn, const VpuConfig& cfg);

// ---- binary encoding -------------------------------------------------------
// The eCPU dispatches vector instructions as 32-bit words (plus a 32-bit
// scalar operand side-band, as on the NM-Carus register interface):
//   [31:26]=vopc [25:21]=vs2 [20:16]=vs1 [15:11]=vd [10:9]=esize [8:0]=vl/8
// vl is encoded in units of 8 elements rounded up (the dispatcher carries
// the exact vl side-band; the encoding exists for trace fidelity and tests).

std::uint32_t encode_vinsn(const VInsn& insn);
VInsn decode_vinsn(std::uint32_t word, std::uint32_t vl, std::uint32_t scalar);

std::string vinsn_to_string(const VInsn& insn);

}  // namespace arcane::vpu

#endif  // ARCANE_VPU_VINSN_HPP_
