// One NM-Carus vector processing unit: functional execution of the vector
// ISA over the shared line storage plus the dispatch/issue timing model.
#ifndef ARCANE_VPU_VECTOR_UNIT_HPP_
#define ARCANE_VPU_VECTOR_UNIT_HPP_

#include <span>
#include <vector>

#include "common/config.hpp"
#include "sim/stats.hpp"
#include "vpu/line_storage.hpp"
#include "vpu/vinsn.hpp"

namespace arcane::vpu {

class VectorUnit {
 public:
  VectorUnit(const VpuConfig& cfg, unsigned id, LineStorage& storage)
      : cfg_(cfg), id_(id), storage_(&storage) {}

  unsigned id() const { return id_; }
  const VpuConfig& config() const { return cfg_; }

  std::span<std::uint8_t> vreg(unsigned idx) { return storage_->vreg(id_, idx); }
  std::span<const std::uint8_t> vreg(unsigned idx) const {
    return storage_->vreg(id_, idx);
  }

  /// Functionally execute one instruction (no timing).
  void execute(const VInsn& insn);

  /// Execute a micro-program starting at `start`: the eCPU issues one
  /// instruction every `dispatch_gap` cycles into an `issue_queue`-deep
  /// queue, so dispatch overlaps execution for long vectors but dominates
  /// for short ones. Returns the completion time. Functional effects are
  /// applied immediately (see DESIGN.md on event-atomic kernel phases).
  Cycle run_program(std::span<const VInsn> prog, Cycle start,
                    unsigned dispatch_gap);

  const sim::VpuStats& stats() const { return stats_; }
  sim::VpuStats& stats() { return stats_; }

 private:
  VpuConfig cfg_;
  unsigned id_;
  LineStorage* storage_;
  sim::VpuStats stats_;
  // Reused hot-path scratch: source snapshots (only taken when a source
  // register aliases vd) and the per-instruction completion times of
  // run_program's issue-queue model. Member storage keeps the lane loop
  // allocation-free across kernels.
  std::vector<std::uint8_t> snap1_, snap2_;
  std::vector<Cycle> complete_;
};

}  // namespace arcane::vpu

#endif  // ARCANE_VPU_VECTOR_UNIT_HPP_
