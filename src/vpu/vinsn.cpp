#include "vpu/vinsn.hpp"

#include <sstream>

namespace arcane::vpu {

const char* vopc_name(VOpc op) {
  switch (op) {
    case VOpc::kAddVV: return "vadd.vv";
    case VOpc::kAddVX: return "vadd.vx";
    case VOpc::kSubVV: return "vsub.vv";
    case VOpc::kSubVX: return "vsub.vx";
    case VOpc::kRsubVX: return "vrsub.vx";
    case VOpc::kMulVV: return "vmul.vv";
    case VOpc::kMulVX: return "vmul.vx";
    case VOpc::kMaccVV: return "vmacc.vv";
    case VOpc::kMaccVX: return "vmacc.vx";
    case VOpc::kMaccEs: return "vmacc.es";
    case VOpc::kMinVV: return "vmin.vv";
    case VOpc::kMinVX: return "vmin.vx";
    case VOpc::kMaxVV: return "vmax.vv";
    case VOpc::kMaxVX: return "vmax.vx";
    case VOpc::kAndVV: return "vand.vv";
    case VOpc::kAndVX: return "vand.vx";
    case VOpc::kOrVV: return "vor.vv";
    case VOpc::kOrVX: return "vor.vx";
    case VOpc::kXorVV: return "vxor.vv";
    case VOpc::kXorVX: return "vxor.vx";
    case VOpc::kSllVX: return "vsll.vx";
    case VOpc::kSrlVX: return "vsrl.vx";
    case VOpc::kSraVX: return "vsra.vx";
    case VOpc::kSlideDownVX: return "vslidedown.vx";
    case VOpc::kSlideUpVX: return "vslideup.vx";
    case VOpc::kMvVV: return "vmv.vv";
    case VOpc::kMvVX: return "vmv.vx";
    case VOpc::kGatherStride: return "vgather.strided";
    case VOpc::kOpcCount: return "?";
  }
  return "?";
}

Cycle vinsn_cycles(const VInsn& insn, const VpuConfig& cfg) {
  const unsigned epc = cfg.elems_per_cycle(elem_bytes(insn.et));
  Cycle beats = ceil_div<std::uint32_t>(insn.vl == 0 ? 1 : insn.vl, epc);
  if (insn.op == VOpc::kGatherStride) beats *= cfg.gather_penalty;
  Cycle cycles = cfg.pipe_fill + beats;
  if (insn.op == VOpc::kMaccEs) cycles += 1;  // element-scalar read port
  return cycles;
}

std::uint32_t encode_vinsn(const VInsn& insn) {
  const std::uint32_t vl8 = ceil_div<std::uint32_t>(insn.vl, 8u) & 0x1FFu;
  return place(static_cast<std::uint32_t>(insn.op), 31, 26) |
         place(insn.vs2, 25, 21) | place(insn.vs1, 20, 16) |
         place(insn.vd, 15, 11) |
         place(static_cast<std::uint32_t>(insn.et), 10, 9) |
         place(vl8, 8, 0);
}

VInsn decode_vinsn(std::uint32_t w, std::uint32_t vl, std::uint32_t scalar) {
  VInsn insn;
  const auto opc = bits(w, 31, 26);
  ARCANE_CHECK(opc < static_cast<std::uint32_t>(VOpc::kOpcCount),
               "invalid vector opcode " << opc);
  insn.op = static_cast<VOpc>(opc);
  insn.vs2 = static_cast<std::uint8_t>(bits(w, 25, 21));
  insn.vs1 = static_cast<std::uint8_t>(bits(w, 20, 16));
  insn.vd = static_cast<std::uint8_t>(bits(w, 15, 11));
  insn.et = static_cast<ElemType>(bits(w, 10, 9));
  insn.vl = vl;
  insn.scalar = scalar;
  return insn;
}

std::string vinsn_to_string(const VInsn& insn) {
  std::ostringstream os;
  os << vopc_name(insn.op) << '.' << elem_suffix(insn.et) << " v"
     << static_cast<unsigned>(insn.vd) << ", v"
     << static_cast<unsigned>(insn.vs1) << ", v"
     << static_cast<unsigned>(insn.vs2) << " vl=" << insn.vl;
  if (vinsn_uses_scalar(insn.op)) os << " x=" << insn.scalar;
  return os.str();
}

}  // namespace arcane::vpu
