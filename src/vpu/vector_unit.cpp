#include "vpu/vector_unit.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/assert.hpp"

namespace arcane::vpu {
namespace {

// Element-typed functional execution. s1/s2 view the source registers (or a
// snapshot when a source aliases vd — see execute()), so reads behave as if
// they all happen before any write.
template <typename T>
void exec_typed(const VInsn& insn, std::span<std::uint8_t> vd,
                std::span<const T> s1, std::span<const T> s2,
                unsigned capacity) {
  T* d = reinterpret_cast<T*>(vd.data());
  const std::uint32_t vl = insn.vl;
  const T x = static_cast<T>(insn.scalar);
  auto wrap = [](std::int64_t v) { return static_cast<T>(v); };

  switch (insn.op) {
    case VOpc::kAddVV: for (std::uint32_t i = 0; i < vl; ++i) d[i] = wrap(std::int64_t{s1[i]} + s2[i]); break;
    case VOpc::kAddVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = wrap(std::int64_t{s1[i]} + x); break;
    case VOpc::kSubVV: for (std::uint32_t i = 0; i < vl; ++i) d[i] = wrap(std::int64_t{s1[i]} - s2[i]); break;
    case VOpc::kSubVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = wrap(std::int64_t{s1[i]} - x); break;
    case VOpc::kRsubVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = wrap(std::int64_t{x} - s1[i]); break;
    case VOpc::kMulVV: for (std::uint32_t i = 0; i < vl; ++i) d[i] = wrap(std::int64_t{s1[i]} * s2[i]); break;
    case VOpc::kMulVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = wrap(std::int64_t{s1[i]} * x); break;
    case VOpc::kMaccVV: for (std::uint32_t i = 0; i < vl; ++i) d[i] = wrap(std::int64_t{d[i]} + std::int64_t{s1[i]} * s2[i]); break;
    case VOpc::kMaccVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = wrap(std::int64_t{d[i]} + std::int64_t{x} * s2[i]); break;
    case VOpc::kMaccEs: {
      ARCANE_ASSERT(insn.scalar < capacity, "vmacc.es element index "
                                                << insn.scalar
                                                << " out of range");
      const std::int64_t e = s1[insn.scalar];
      for (std::uint32_t i = 0; i < vl; ++i)
        d[i] = wrap(std::int64_t{d[i]} + e * s2[i]);
      break;
    }
    case VOpc::kMinVV: for (std::uint32_t i = 0; i < vl; ++i) d[i] = std::min(s1[i], s2[i]); break;
    case VOpc::kMinVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = std::min(s1[i], x); break;
    case VOpc::kMaxVV: for (std::uint32_t i = 0; i < vl; ++i) d[i] = std::max(s1[i], s2[i]); break;
    case VOpc::kMaxVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = std::max(s1[i], x); break;
    case VOpc::kAndVV: for (std::uint32_t i = 0; i < vl; ++i) d[i] = s1[i] & s2[i]; break;
    case VOpc::kAndVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = s1[i] & x; break;
    case VOpc::kOrVV: for (std::uint32_t i = 0; i < vl; ++i) d[i] = s1[i] | s2[i]; break;
    case VOpc::kOrVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = s1[i] | x; break;
    case VOpc::kXorVV: for (std::uint32_t i = 0; i < vl; ++i) d[i] = s1[i] ^ s2[i]; break;
    case VOpc::kXorVX: for (std::uint32_t i = 0; i < vl; ++i) d[i] = s1[i] ^ x; break;
    case VOpc::kSllVX: {
      const unsigned sh = insn.scalar & (8u * sizeof(T) - 1u);
      for (std::uint32_t i = 0; i < vl; ++i)
        d[i] = wrap(static_cast<std::int64_t>(s1[i]) << sh);
      break;
    }
    case VOpc::kSrlVX: {
      const unsigned sh = insn.scalar & (8u * sizeof(T) - 1u);
      using U = std::make_unsigned_t<T>;
      for (std::uint32_t i = 0; i < vl; ++i)
        d[i] = static_cast<T>(static_cast<U>(s1[i]) >> sh);
      break;
    }
    case VOpc::kSraVX: {
      const unsigned sh = insn.scalar & (8u * sizeof(T) - 1u);
      for (std::uint32_t i = 0; i < vl; ++i)
        d[i] = static_cast<T>(s1[i] >> sh);
      break;
    }
    case VOpc::kSlideDownVX:
      for (std::uint32_t i = 0; i < vl; ++i) {
        const std::uint64_t src = std::uint64_t{i} + insn.scalar;
        d[i] = src < capacity ? s1[src] : T{0};
      }
      break;
    case VOpc::kSlideUpVX:
      for (std::uint32_t i = 0; i < vl; ++i)
        if (i >= insn.scalar) d[i] = s1[i - insn.scalar];
      break;
    case VOpc::kMvVV:
      for (std::uint32_t i = 0; i < vl; ++i) d[i] = s1[i];
      break;
    case VOpc::kMvVX:
      for (std::uint32_t i = 0; i < vl; ++i) d[i] = x;
      break;
    case VOpc::kGatherStride: {
      const std::uint32_t stride = hi16(insn.scalar);
      const std::uint32_t off = lo16(insn.scalar);
      for (std::uint32_t i = 0; i < vl; ++i) {
        const std::uint64_t src = std::uint64_t{i} * stride + off;
        d[i] = src < capacity ? s1[src] : T{0};
      }
      break;
    }
    case VOpc::kOpcCount:
      ARCANE_ASSERT(false, "invalid vector opcode");
  }
}

}  // namespace

void VectorUnit::execute(const VInsn& insn) {
  const unsigned ebytes = elem_bytes(insn.et);
  const unsigned capacity = cfg_.vlen_bytes / ebytes;
  ARCANE_CHECK(insn.vl <= capacity, "vl " << insn.vl << " exceeds VLEN/"
                                          << ebytes << " capacity");
  ARCANE_CHECK(insn.vd < cfg_.num_vregs && insn.vs1 < cfg_.num_vregs &&
                   insn.vs2 < cfg_.num_vregs,
               "vector register index out of range");

  // Snapshot a source only when it aliases the destination register, so
  // overlapping writes cannot corrupt reads (the hardware streams through
  // separate read/write ports). Non-aliasing sources — the overwhelmingly
  // common case in the kernel library — are read in place, skipping two
  // VLEN-sized copies per instruction in the lane loop.
  auto src1 = vreg(insn.vs1);
  auto src2 = vreg(insn.vs2);
  const std::uint8_t* s1p = src1.data();
  const std::uint8_t* s2p = src2.data();
  if (insn.vs1 == insn.vd) {
    snap1_.resize(cfg_.vlen_bytes);
    std::memcpy(snap1_.data(), src1.data(), cfg_.vlen_bytes);
    s1p = snap1_.data();
  }
  if (insn.vs2 == insn.vd) {
    snap2_.resize(cfg_.vlen_bytes);
    std::memcpy(snap2_.data(), src2.data(), cfg_.vlen_bytes);
    s2p = snap2_.data();
  }

  auto dst = vreg(insn.vd);
  switch (insn.et) {
    case ElemType::kWord:
      exec_typed<std::int32_t>(
          insn, dst, {reinterpret_cast<const std::int32_t*>(s1p), capacity},
          {reinterpret_cast<const std::int32_t*>(s2p), capacity}, capacity);
      break;
    case ElemType::kHalf:
      exec_typed<std::int16_t>(
          insn, dst, {reinterpret_cast<const std::int16_t*>(s1p), capacity},
          {reinterpret_cast<const std::int16_t*>(s2p), capacity}, capacity);
      break;
    case ElemType::kByte:
      exec_typed<std::int8_t>(
          insn, dst, {reinterpret_cast<const std::int8_t*>(s1p), capacity},
          {reinterpret_cast<const std::int8_t*>(s2p), capacity}, capacity);
      break;
  }

  ++stats_.instructions;
  stats_.elements += insn.vl;
  if (vinsn_is_mac(insn.op)) stats_.macs += insn.vl;
}

Cycle VectorUnit::run_program(std::span<const VInsn> prog, Cycle start,
                              unsigned dispatch_gap) {
  // Bounded-queue pipeline: instruction i enters the issue queue when the
  // eCPU has dispatched it AND a queue slot is free; it executes after its
  // predecessor completes (in-order single execution pipe).
  const unsigned depth = std::max(1u, cfg_.issue_queue);
  complete_.assign(prog.size() + 1, start);
  Cycle dispatch_ready = start;
  Cycle prev_complete = start;
  Cycle busy = 0;

  for (std::size_t i = 0; i < prog.size(); ++i) {
    execute(prog[i]);
    dispatch_ready += dispatch_gap;
    Cycle enqueue = dispatch_ready;
    if (i >= depth) enqueue = std::max(enqueue, complete_[i - depth]);
    const Cycle exec_start = std::max(enqueue, prev_complete);
    const Cycle lat = vinsn_cycles(prog[i], cfg_);
    prev_complete = exec_start + lat;
    complete_[i] = prev_complete;
    busy += lat;
  }
  stats_.busy_cycles += busy;
  return prev_complete;
}

}  // namespace arcane::vpu
