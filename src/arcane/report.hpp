// Run reports: aggregate every component's statistics into a structured,
// printable summary — the simulator's equivalent of gem5's stats dump.
#ifndef ARCANE_ARCANE_REPORT_HPP_
#define ARCANE_ARCANE_REPORT_HPP_

#include <iosfwd>
#include <string>

#include "arcane/system.hpp"

namespace arcane {

struct RunReport {
  // Host
  Cycle host_cycles = 0;
  std::uint64_t host_instructions = 0;
  double host_ipc = 0;
  Cycle host_stall_cycles = 0;
  std::uint64_t offloads = 0;
  // Cache
  sim::CacheStats cache{};
  // C-RT
  sim::CrtPhaseStats phases{};
  // DMA
  sim::DmaStats dma{};
  // VPUs (aggregated)
  std::uint64_t vpu_instructions = 0;
  std::uint64_t vpu_elements = 0;
  std::uint64_t vpu_macs = 0;
  Cycle vpu_busy_cycles = 0;
  // Derived
  double simulated_seconds = 0;  // at SystemConfig::clock_mhz
  double effective_gops = 0;     // 2*MACs / simulated time

  std::string to_string() const;
};

/// Snapshot the current statistics of `sys` after a run.
RunReport make_report(System& sys, const cpu::HostCpu::RunResult& res);

std::ostream& operator<<(std::ostream& os, const RunReport& r);

}  // namespace arcane

#endif  // ARCANE_ARCANE_REPORT_HPP_
