#include "arcane/report.hpp"

#include <ostream>
#include <sstream>

namespace arcane {

RunReport make_report(System& sys, const cpu::HostCpu::RunResult& res) {
  RunReport r;
  r.host_cycles = res.cycles;
  r.host_instructions = res.instructions;
  r.host_ipc = res.cycles
                   ? static_cast<double>(res.instructions) /
                         static_cast<double>(res.cycles)
                   : 0.0;
  r.host_stall_cycles = sys.host().stats().stall_cycles;
  r.offloads = sys.host().stats().offloads;
  r.cache = sys.llc().stats();
  r.phases = sys.runtime().phases();
  r.dma = sys.dma().stats();
  for (const auto& vu : sys.vpus()) {
    r.vpu_instructions += vu.stats().instructions;
    r.vpu_elements += vu.stats().elements;
    r.vpu_macs += vu.stats().macs;
    r.vpu_busy_cycles += vu.stats().busy_cycles;
  }
  const double hz = sys.config().clock_mhz * 1e6;
  r.simulated_seconds = hz > 0 ? static_cast<double>(res.cycles) / hz : 0.0;
  r.effective_gops =
      r.simulated_seconds > 0
          ? 2.0 * static_cast<double>(r.vpu_macs) / r.simulated_seconds / 1e9
          : 0.0;
  return r;
}

std::string RunReport::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RunReport& r) {
  os << "host:  " << r.host_cycles << " cycles, " << r.host_instructions
     << " instructions (IPC " << r.host_ipc << "), " << r.host_stall_cycles
     << " stall cycles, " << r.offloads << " offloads\n";
  os << "cache: " << r.cache.hits << " hits / " << r.cache.misses
     << " misses (" << 100.0 * r.cache.hit_rate() << "% hit rate), "
     << r.cache.evictions << " evictions, " << r.cache.writebacks
     << " writebacks, " << r.cache.kernel_line_claims << " line claims\n";
  os << "  stalls: lock=" << r.cache.stalls.lock
     << " at_src=" << r.cache.stalls.at_source
     << " at_dst=" << r.cache.stalls.at_dest
     << " miss=" << r.cache.stalls.miss
     << " dma=" << r.cache.stalls.dma_contention << "\n";
  os << "c-rt:  " << r.phases.kernels_executed << " kernels, "
     << r.phases.xmr_executed << " xmr; phases[cyc]: preamble="
     << r.phases.preamble << " sched=" << r.phases.scheduling
     << " alloc=" << r.phases.allocation << " compute=" << r.phases.compute
     << " writeback=" << r.phases.writeback << "; renames="
     << r.phases.renames << " forwarded_rows=" << r.phases.writebacks_elided
     << "\n";
  if (r.host_cycles > 0) {
    const double busy = 100.0 * static_cast<double>(r.phases.ecpu_busy) /
                        static_cast<double>(r.host_cycles);
    os << "ecpu:  busy " << r.phases.ecpu_busy << " cycles (" << busy
       << "% — remainder in C-RT deep sleep)\n";
  }
  os << "dma:   " << r.dma.descriptors << " descriptors, "
     << r.dma.bytes_from_external << "B ext->vpu, " << r.dma.bytes_from_cache
     << "B cache->vpu, " << r.dma.bytes_to_cache << "B vpu->cache, "
     << r.dma.bytes_to_external << "B ->ext, busy " << r.dma.busy_cycles
     << " cycles\n";
  os << "vpu:   " << r.vpu_instructions << " instructions, "
     << r.vpu_elements << " elements, " << r.vpu_macs << " MACs, busy "
     << r.vpu_busy_cycles << " cycles";
  if (r.effective_gops > 0) {
    os << " (" << r.effective_gops << " effective GOPS)";
  }
  os << "\n";
  return os;
}

}  // namespace arcane
