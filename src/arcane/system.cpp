#include "arcane/system.hpp"

#include <cstring>
#include <sstream>

namespace arcane {

System::System(SystemConfig cfg, crt::KernelLibrary library) : cfg_(cfg) {
  cfg_.validate();
  ext_ = std::make_unique<mem::MainMemory>(cfg_.mem.data_base,
                                           cfg_.mem.data_bytes, cfg_.mem);
  imem_ = std::make_unique<mem::InstructionMemory>(cfg_.mem.imem_base,
                                                   cfg_.mem.imem_bytes);
  storage_ = std::make_unique<vpu::LineStorage>(cfg_.llc);
  dma_ = std::make_unique<dma::DmaEngine>(cfg_.mem);
  dma_->set_backend(&ext_->backend());
  vpus_.reserve(cfg_.llc.num_vpus);
  for (unsigned i = 0; i < cfg_.llc.num_vpus; ++i) {
    vpus_.emplace_back(cfg_.llc.vpu, i, *storage_);
  }
  llc_ = std::make_unique<llc::Llc>(cfg_, events_, *ext_, *dma_, *storage_);
  runtime_ = std::make_unique<crt::Runtime>(cfg_, events_, *llc_, *dma_,
                                            vpus_, std::move(library));
  sched_ = std::make_unique<sched::Scheduler>(*runtime_);
  qos_ = std::make_unique<qos::AdmissionController>(*sched_, events_,
                                                    cfg_.qos);
  bridge_ = std::make_unique<bridge::Bridge>(cfg_, *runtime_);
  host_ = std::make_unique<cpu::HostCpu>(cfg_, *imem_, *this, bridge_.get());
  llc_->set_spans(&spans_);
  runtime_->set_spans(&spans_);
  bridge_->set_spans(&spans_);
  dma_->set_spans(&spans_);
  llc_->register_metrics(metrics_);
  runtime_->register_metrics(metrics_);
  dma_->register_metrics(metrics_);
  ext_->backend().register_metrics(metrics_);
  sched_->set_telemetry(&metrics_, &flight_);
  sched_->set_op_log(&op_log_);
  qos_->set_telemetry(&metrics_, &spans_);
  if (cfg_.fault.enabled) {
    injector_ = std::make_unique<fault::Injector>(cfg_.fault, events_);
    injector_->set_listener(sched_.get());
    injector_->set_spans(&spans_);
    injector_->register_metrics(metrics_);
    sched_->set_injector(injector_.get());
    if (injector_->has_degrade_windows()) {
      ext_->backend().set_degrade(injector_.get());
    }
    injector_->arm();
  }
}

void System::load_program(const std::vector<std::uint32_t>& words) {
  load_program(words, cfg_.mem.imem_base);
}

void System::load_program(const std::vector<std::uint32_t>& words, Addr base) {
  imem_->load(base, words);
  host_->invalidate_decode_cache();
  host_->reset(base, stack_top());
}

cpu::HostCpu::RunResult System::run(std::uint64_t max_instructions) {
  auto res = run_unchecked(max_instructions);
  if (res.reason != cpu::HaltReason::kEcall) {
    std::ostringstream os;
    os << "host program halted abnormally: " << halt_reason_name(res.reason)
       << " at pc=0x" << std::hex << res.pc;
    if (!bridge_->last_reject_reason().empty()) {
      os << " (last offload reject: " << bridge_->last_reject_reason() << ")";
    }
    throw Error(os.str());
  }
  return res;
}

cpu::HostCpu::RunResult System::run_unchecked(std::uint64_t max_instructions) {
  auto res = host_->run(max_instructions);
  drain();
  return res;
}

void System::drain() { events_.run_all(); }

void System::write_bytes(Addr addr, std::span<const std::uint8_t> data) {
  runtime_->materialize_range(addr, static_cast<std::uint32_t>(data.size()));
  llc_->backdoor_write(addr, data.data(),
                       static_cast<std::uint32_t>(data.size()));
}

void System::read_bytes(Addr addr, std::span<std::uint8_t> out) {
  runtime_->materialize_range(addr, static_cast<std::uint32_t>(out.size()));
  llc_->backdoor_read(addr, out.data(), static_cast<std::uint32_t>(out.size()));
}

Cycle System::read(Addr addr, unsigned bytes, void* out, Cycle now) {
  const auto& m = cfg_.mem;
  if (addr >= m.data_base && addr + bytes <= m.data_base + m.data_bytes) {
    return llc_->host_access(addr, bytes, /*is_write=*/false, out, now).complete_at;
  }
  if (addr >= m.mmio_base && addr + bytes <= m.mmio_base + m.mmio_bytes) {
    events_.run_until(now);
    const std::uint32_t v = bridge_->mmio_read(addr - m.mmio_base);
    std::memcpy(out, &v, bytes);
    return now + 1;
  }
  throw Error("bus fault: read outside mapped regions");
}

Cycle System::write(Addr addr, unsigned bytes, const void* in, Cycle now) {
  const auto& m = cfg_.mem;
  if (addr >= m.data_base && addr + bytes <= m.data_base + m.data_bytes) {
    return llc_->host_access(addr, bytes, /*is_write=*/true,
                             const_cast<void*>(in), now).complete_at;
  }
  if (addr >= m.mmio_base && addr + bytes <= m.mmio_base + m.mmio_bytes) {
    return now + 1;  // configuration writes are accepted and ignored
  }
  throw Error("bus fault: write outside mapped regions");
}

}  // namespace arcane
