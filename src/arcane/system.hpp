// ArcaneSystem — the top-level simulated platform: an X-HEEP-class MCU whose
// data memory subsystem is the ARCANE smart LLC (paper Figure 1).
//
// This is the library's primary public entry point:
//
//   arcane::System sys(arcane::SystemConfig::paper(/*lanes=*/4));
//   sys.write_bytes(addr, input);                  // place operands
//   sys.load_program(program.finish());            // host application
//   auto result = sys.run();                       // simulate
//   sys.read_bytes(addr, out);                     // fetch results
//
// The same System runs pure-software baselines (no xmnmc instructions): the
// smart LLC then behaves exactly like the paper's "standard data LLC".
#ifndef ARCANE_ARCANE_SYSTEM_HPP_
#define ARCANE_ARCANE_SYSTEM_HPP_

#include <memory>
#include <span>
#include <vector>

#include "bridge/bridge.hpp"
#include "common/config.hpp"
#include "cpu/cpu.hpp"
#include "crt/runtime.hpp"
#include "dma/dma.hpp"
#include "fault/fault.hpp"
#include "llc/llc.hpp"
#include "mem/imem.hpp"
#include "mem/main_memory.hpp"
#include "qos/admission.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "vpu/line_storage.hpp"
#include "vpu/vector_unit.hpp"

namespace arcane {

class System final : public cpu::DataPort {
 public:
  explicit System(SystemConfig cfg,
                  crt::KernelLibrary library = crt::KernelLibrary::with_builtins());

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  const SystemConfig& config() const { return cfg_; }

  // ------------------------- program control -------------------------
  /// Load a host program (defaults to the instruction-memory base) and
  /// reset the CPU with pc at its first word and sp at the top of the data
  /// region.
  void load_program(const std::vector<std::uint32_t>& words);
  void load_program(const std::vector<std::uint32_t>& words, Addr base);

  /// Run the host program to completion (ecall), then settle any still
  /// in-flight kernel activity. Throws arcane::Error when the program halts
  /// abnormally (illegal instruction, bus fault, ...).
  cpu::HostCpu::RunResult run(std::uint64_t max_instructions = ~0ull);
  /// Same, but returns the abnormal result instead of throwing.
  cpu::HostCpu::RunResult run_unchecked(std::uint64_t max_instructions = ~0ull);

  /// Execute all pending cache-side events (kernels in flight).
  void drain();

  // --------------------- coherent memory helpers ---------------------
  void write_bytes(Addr addr, std::span<const std::uint8_t> data);
  void read_bytes(Addr addr, std::span<std::uint8_t> out);
  template <typename T>
  void write_scalar(Addr addr, T v) {
    write_bytes(addr, {reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)});
  }
  template <typename T>
  T read_scalar(Addr addr) {
    T v{};
    read_bytes(addr, {reinterpret_cast<std::uint8_t*>(&v), sizeof(T)});
    return v;
  }

  /// First address of the cacheable data region and its size.
  Addr data_base() const { return cfg_.mem.data_base; }
  std::uint32_t data_size() const { return cfg_.mem.data_bytes; }
  /// Default stack pointer (top of the data region, 16-byte aligned).
  Addr stack_top() const {
    return cfg_.mem.data_base + cfg_.mem.data_bytes - 16;
  }

  // --------------------------- components ----------------------------
  cpu::HostCpu& host() { return *host_; }
  llc::Llc& llc() { return *llc_; }
  crt::Runtime& runtime() { return *runtime_; }
  /// Multi-tenant kernel-offload scheduler driving one crt::KernelExecutor
  /// per VPU instance (cfg.sched_instances / cfg.sched_policy). Shares the
  /// Runtime's eCPU, DMA and LLC arbitration; jobs submitted here execute
  /// concurrently across instances in simulated time.
  sched::Scheduler& scheduler() { return *sched_; }
  /// QoS admission controller fronting the scheduler (cfg.qos): per-tenant
  /// queue caps, token-bucket rates, priority classes and SLO-deadline
  /// shedding. With cfg.qos.enabled == false it admits everything, so
  /// serving through it is equivalent to driving scheduler() directly.
  qos::AdmissionController& admission() { return *qos_; }
  /// Deterministic fault injector (cfg.fault). Constructed — and its plan
  /// armed on the event queue — only when cfg.fault.enabled; nullptr
  /// otherwise, and the scheduler/memory fast paths stay bit-identical to
  /// a fault-free build.
  fault::Injector* injector() { return injector_.get(); }
  const fault::Injector* injector() const { return injector_.get(); }
  bridge::Bridge& bridge() { return *bridge_; }
  dma::DmaEngine& dma() { return *dma_; }
  sim::EventQueue& events() { return events_; }
  /// Named metrics over every layer's stats (docs/OBSERVABILITY.md).
  telemetry::Registry& metrics() { return metrics_; }
  const telemetry::Registry& metrics() const { return metrics_; }
  /// Sim-time span tracer (disabled by default; spans().enable() to record,
  /// telemetry::TraceFile to export for ui.perfetto.dev).
  telemetry::SpanTracer& spans() { return spans_; }
  const telemetry::SpanTracer& spans() const { return spans_; }
  /// Always-on per-tenant ring of recent scheduler job outcomes.
  telemetry::FlightRecorder& flight_recorder() { return flight_; }
  const telemetry::FlightRecorder& flight_recorder() const { return flight_; }
  /// Per-op timing log feeding telemetry::CriticalPath (disabled by
  /// default; op_log().enable() to record — capture never perturbs timing).
  telemetry::OpLog& op_log() { return op_log_; }
  const telemetry::OpLog& op_log() const { return op_log_; }
  /// System-wide stall-bucket totals: scheduler-retired ops plus the legacy
  /// single-kernel offload path. Each retired op contributes exactly its
  /// lifetime cycles (docs/OBSERVABILITY.md, "Cycle accounting").
  sim::OpStallBreakdown stall_totals() const {
    sim::OpStallBreakdown b = sched_->stall_totals();
    b += runtime_->stall_totals();
    return b;
  }
  std::vector<vpu::VectorUnit>& vpus() { return vpus_; }
  mem::MainMemory& external_memory() { return *ext_; }
  /// Timing model of the external memory (cfg.mem.backend selects it).
  mem::MemBackend& mem_backend() { return ext_->backend(); }
  const mem::MemBackend& mem_backend() const { return ext_->backend(); }

  // ------------------------- cpu::DataPort ---------------------------
  Cycle read(Addr addr, unsigned bytes, void* out, Cycle now) override;
  Cycle write(Addr addr, unsigned bytes, const void* in, Cycle now) override;

 private:
  SystemConfig cfg_;
  sim::EventQueue events_;
  telemetry::Registry metrics_;
  telemetry::SpanTracer spans_;
  telemetry::FlightRecorder flight_;
  telemetry::OpLog op_log_;
  std::unique_ptr<mem::MainMemory> ext_;
  std::unique_ptr<mem::InstructionMemory> imem_;
  std::unique_ptr<vpu::LineStorage> storage_;
  std::unique_ptr<dma::DmaEngine> dma_;
  std::vector<vpu::VectorUnit> vpus_;
  std::unique_ptr<llc::Llc> llc_;
  std::unique_ptr<crt::Runtime> runtime_;
  std::unique_ptr<sched::Scheduler> sched_;
  std::unique_ptr<qos::AdmissionController> qos_;
  std::unique_ptr<fault::Injector> injector_;
  std::unique_ptr<bridge::Bridge> bridge_;
  std::unique_ptr<cpu::HostCpu> host_;
};

}  // namespace arcane

#endif  // ARCANE_ARCANE_SYSTEM_HPP_
