// Host-program builder for xmnmc applications — the C++ analogue of the
// intrinsics (_xmr_w, _conv_layer_w, ...) in the paper's Listing 1.
//
// Wraps isa::Assembler with helpers that materialise the packed operand
// registers and emit the custom-2 instructions, plus the synchronisation
// idiom: reading any destination element stalls the host (via the Address
// Table) until the kernel write-back completes.
#ifndef ARCANE_ARCANE_PROGRAM_BUILDER_HPP_
#define ARCANE_ARCANE_PROGRAM_BUILDER_HPP_

#include <vector>

#include "common/types.hpp"
#include "isa/assembler.hpp"
#include "isa/encode.hpp"
#include "isa/xmnmc.hpp"

namespace arcane {

class XProgram {
 public:
  explicit XProgram(Addr text_base = 0) : a_(text_base) {}

  isa::Assembler& a() { return a_; }

  /// _xmr_[w,h,b](md, addr, shape): bind a matrix register.
  void xmr(unsigned md, Addr addr, const MatShape& shape, ElemType et) {
    using isa::Reg;
    a_.li(Reg::kT0, static_cast<std::int32_t>(addr));
    a_.li(Reg::kT1, static_cast<std::int32_t>(
                        pack16(static_cast<std::uint16_t>(shape.stride),
                               static_cast<std::uint16_t>(md))));
    a_.li(Reg::kT2, static_cast<std::int32_t>(
                        pack16(static_cast<std::uint16_t>(shape.cols),
                               static_cast<std::uint16_t>(shape.rows))));
    a_.xmnmc(isa::enc::kXmrFunc5, et, Reg::kT0, Reg::kT1, Reg::kT2);
  }

  /// Generic xmkN emission from packed fields.
  void xmk(unsigned func5, ElemType et, const isa::xmnmc::XmkFields& f) {
    using isa::Reg;
    a_.li(Reg::kT0, static_cast<std::int32_t>(pack16(f.alpha, f.beta)));
    a_.li(Reg::kT1, static_cast<std::int32_t>(pack16(f.ms3, f.md)));
    a_.li(Reg::kT2, static_cast<std::int32_t>(pack16(f.ms1, f.ms2)));
    a_.xmnmc(func5, et, Reg::kT0, Reg::kT1, Reg::kT2);
  }

  void gemm(unsigned md, unsigned ms1, unsigned ms2, unsigned ms3,
            std::int16_t alpha, std::int16_t beta, ElemType et) {
    xmk(isa::xmnmc::kGemm, et,
        {static_cast<std::uint16_t>(alpha), static_cast<std::uint16_t>(beta),
         static_cast<std::uint16_t>(ms3), static_cast<std::uint16_t>(md),
         static_cast<std::uint16_t>(ms1), static_cast<std::uint16_t>(ms2)});
  }

  void leaky_relu(unsigned md, unsigned ms1, unsigned alpha_shift,
                  ElemType et) {
    xmk(isa::xmnmc::kLeakyRelu, et,
        {static_cast<std::uint16_t>(alpha_shift), 0, 0,
         static_cast<std::uint16_t>(md), static_cast<std::uint16_t>(ms1), 0});
  }

  void maxpool(unsigned md, unsigned ms1, unsigned win, unsigned stride,
               ElemType et) {
    xmk(isa::xmnmc::kMaxPool, et,
        {static_cast<std::uint16_t>(stride), static_cast<std::uint16_t>(win),
         0, static_cast<std::uint16_t>(md), static_cast<std::uint16_t>(ms1),
         0});
  }

  void conv2d(unsigned md, unsigned ms1, unsigned ms2, ElemType et) {
    xmk(isa::xmnmc::kConv2d, et,
        {0, 0, 0, static_cast<std::uint16_t>(md),
         static_cast<std::uint16_t>(ms1), static_cast<std::uint16_t>(ms2)});
  }

  /// _conv_layer_[w,h,b](md, ms1, ms2) — paper Listing 1.
  void conv_layer(unsigned md, unsigned ms1, unsigned ms2, ElemType et) {
    xmk(isa::xmnmc::kConvLayer, et,
        {0, 0, 0, static_cast<std::uint16_t>(md),
         static_cast<std::uint16_t>(ms1), static_cast<std::uint16_t>(ms2)});
  }

  /// Touch one byte of `addr` — stalls (via the AT) until the kernel that
  /// produces it has written back. The paper's implicit synchronisation.
  void sync_read(Addr addr) {
    using isa::Reg;
    a_.li(Reg::kT0, static_cast<std::int32_t>(addr));
    a_.lbu(Reg::kT1, Reg::kT0, 0);
  }

  /// Exit the host application (exit code in a0).
  void halt(std::int32_t exit_code = 0) {
    a_.li(isa::Reg::kA0, exit_code);
    a_.ecall();
  }

  std::vector<std::uint32_t> finish() { return a_.finish(); }

 private:
  isa::Assembler a_;
};

}  // namespace arcane

#endif  // ARCANE_ARCANE_PROGRAM_BUILDER_HPP_
