# Locate GoogleTest, preferring (in order):
#   1. an installed package (GTestConfig.cmake or CMake's FindGTest),
#   2. distro sources under /usr/src/googletest (Debian/Ubuntu libgtest-dev),
#   3. FetchContent from upstream — needs network, so it is opt-in via
#      -DARCANE_FETCH_GTEST=ON; a failed download would otherwise abort the
#      whole configure instead of gracefully skipping tests/.
# On success the imported targets GTest::gtest and GTest::gtest_main exist;
# otherwise the top-level CMakeLists warns and builds everything but tests/.
option(ARCANE_FETCH_GTEST "Download GoogleTest via FetchContent if not found" OFF)

find_package(GTest QUIET)

if(NOT TARGET GTest::gtest_main AND EXISTS /usr/src/googletest/CMakeLists.txt)
  message(STATUS "GTest package not found — building /usr/src/googletest")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest
                   ${CMAKE_BINARY_DIR}/_deps/googletest-distro EXCLUDE_FROM_ALL)
  if(TARGET gtest_main AND NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()

if(NOT TARGET GTest::gtest_main AND ARCANE_FETCH_GTEST)
  message(STATUS "GTest not found locally — trying FetchContent")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()
